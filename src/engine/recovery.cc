// Crash recovery (paper Sec. II), rebased onto overlapped checkpoints and
// sharded across the background thread pool.
//
// The two logs are recovered with lock-step ordering:
//
//   1. syslogs, undo-redo: an analysis pass finds winner transactions
//      (those with a kPsCommit record); an undo pass rolls back losers'
//      changes in reverse order using before-images; a redo pass then
//      re-applies winners' changes in log order. All physical operations
//      are value-logged and tolerant, so replay is idempotent regardless
//      of which dirty pages reached disk.
//
//      Undo MUST precede redo: before-images are captured at runtime, so a
//      loser that touched a RID before a later winner carries a stale image
//      of it (the winner's value postdates the abort). Running undo last
//      would clobber the winner's redone value with that stale image.
//      Undo-first converges: per RID, exclusive locks are held to commit or
//      abort, so transaction segments never interleave — any loser segment
//      after the last winner write rolled back (at runtime) to exactly that
//      winner's value, which is also the before-image it logged; loser
//      segments before it are overwritten by the redo pass anyway.
//
//   2. sysimrslogs, redo-only with a checkpoint rebase: replay first
//      locates the newest COMPLETE kCheckpointBegin/kCheckpointEnd pair
//      (matching cts; a begin without a durable end — crash mid-checkpoint
//      — is ignored wholesale). The chosen checkpoint's snapshot rows
//      (kImrsSnapshotRow/Del tagged with its epoch) recreate the IMRS as
//      of the snapshot; committed groups whose kImrsCommit lies *after*
//      the begin record then replay on top of it. With the begin barrier
//      quiescing commits (checkpoint.cc), a group lies before the begin
//      record iff its cts <= epoch, i.e. iff its effects are inside the
//      snapshot — skipping those groups is what turns the log prefix into
//      a snapshot read instead of a full replay. Without any complete
//      pair, every committed group replays from the start, exactly the
//      pre-checkpoint behavior.
//
//      Cross-log arbitration (unchanged): a group whose kImrsCommit
//      carries the has-page-store-changes flag (source != 0) committed in
//      two steps — sysimrslogs group first, syslogs kPsCommit second — and
//      a crash can land between them. Such a group only applies if its
//      transaction is a syslogs winner; otherwise both halves roll back
//      together. Flagged groups older than the last kCheckpoint marker
//      (written at quiescent syslogs truncations, which erase the winner
//      evidence) apply unconditionally.
//
//   3. Sharded application: both logs' physical appliers partition cleanly
//      by RID (value logging; no cross-row dependencies), so replay fans
//      out across kRecoveryShards RID-hash shards (the same Fibonacci hash
//      and shard count as ImrsGc) on the shared background pool. Per shard,
//      per-RID record order is preserved — undo-then-redo for syslogs,
//      snapshot-then-groups in log order for sysimrslogs — which is the
//      only ordering the appliers need. With effective workers <= 1 the
//      shards run inline in shard order: the deterministic anchor the
//      parallel paths are validated against (recovery_test.cc).
//
// Afterwards the RID allocation cursors (merged serially across shard
// trackers), B+Tree / hash indexes, ILM queue memberships, and the commit
// clock are rebuilt from the recovered data. The catalog itself
// (CreateTable calls) is not persisted; the application re-creates tables
// in the same order before calling Recover().

#include <algorithm>
#include <array>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "engine/database.h"
#include "wal/log_record.h"

namespace btrim {

namespace {

/// Replay shards. Matches ImrsGc::kGcShards (and its RID hash) so the
/// recovery fan-out has the same granularity as the GC fan-out.
constexpr int kRecoveryShards = 16;

int ShardForRid(uint64_t rid_enc) {
  const uint64_t h = rid_enc * 0x9E3779B97F4A7C15ull;
  return static_cast<int>(h >> 60) & (kRecoveryShards - 1);
}

/// Tracks the highest row index seen per heap file, to restore cursors.
/// One tracker per replay shard; merged serially afterwards.
class CursorTracker {
 public:
  void See(Rid rid, uint16_t slots_per_page) {
    const uint64_t row_index =
        static_cast<uint64_t>(rid.page_no) * slots_per_page + rid.slot;
    uint64_t& cur = max_row_[rid.file_id];
    if (row_index + 1 > cur) cur = row_index + 1;
  }
  void Merge(const CursorTracker& other) {
    for (const auto& [file_id, cursor] : other.max_row_) {
      uint64_t& cur = max_row_[file_id];
      if (cursor > cur) cur = cursor;
    }
  }
  uint64_t CursorFor(uint16_t file_id) const {
    auto it = max_row_.find(file_id);
    return it == max_row_.end() ? 0 : it->second;
  }

 private:
  std::unordered_map<uint16_t, uint64_t> max_row_;
};

}  // namespace

Status Database::Recover() {
  // Replay parallelism: 0 inherits pack_workers (one knob sizes the shared
  // pool); <= 1 runs every shard inline, in shard order.
  const int effective_workers = options_.recovery_workers == 0
                                    ? options_.pack_workers
                                    : options_.recovery_workers;
  auto run_sharded = [&](std::vector<std::function<void()>> tasks) {
    if (effective_workers <= 1) {
      for (auto& task : tasks) task();
    } else {
      background_pool_->RunTasks(std::move(tasks));
    }
  };

  // Map file_id -> (table, partition) for record application. Thread-safe:
  // catalog_mu_ is taken shared per call.
  auto part_for_rid = [this](uint64_t rid_enc,
                             Rid* rid) -> TablePartition* {
    *rid = Rid::Decode(rid_enc);
    RwSpinLockReadGuard guard(catalog_mu_);
    auto it = part_by_file_.find(rid->file_id);
    if (it == part_by_file_.end()) return nullptr;
    return &it->second.first->partition(it->second.second);
  };

  std::array<CursorTracker, kRecoveryShards> shard_cursors;
  uint64_t max_cts = 0;
  uint64_t max_txn_id = 0;

  // --- cold-columnar store: reload flushed segments -------------------------
  // Tables (and so schemas) were re-created by the caller before Recover().
  // The segment file is the checkpointed base state; kColdPlace/kColdErase
  // records in syslogs carry the post-flush delta and replay on top of it
  // below (checkpoint.cc flushes the cold store before every truncation, so
  // between the two sources every live cold row is covered).
  BTRIM_RETURN_IF_ERROR(cold_->Load());

  // --- syslogs pass 1: analysis (serial) ------------------------------------
  std::unordered_map<uint64_t, uint64_t> winners;  // txn -> cts
  std::array<std::vector<LogRecord>, kRecoveryShards> ps_shards;
  // Cold ops replay serially: segment sealing inside ColdStore::Place makes
  // per-shard fan-out not worth the synchronization, and cold volumes are a
  // small fraction of a batch's records.
  std::vector<LogRecord> cold_ops;
  BTRIM_RETURN_IF_ERROR(syslogs_->Replay([&](const LogRecord& rec) {
    if (rec.txn_id > max_txn_id) max_txn_id = rec.txn_id;
    switch (rec.type) {
      case LogRecordType::kPsCommit:
        winners[rec.txn_id] = rec.cts;
        if (rec.cts > max_cts) max_cts = rec.cts;
        break;
      case LogRecordType::kPsInsert:
      case LogRecordType::kPsUpdate:
      case LogRecordType::kPsDelete:
        ps_shards[ShardForRid(rec.rid)].push_back(rec);
        break;
      case LogRecordType::kColdPlace:
      case LogRecordType::kColdErase:
        cold_ops.push_back(rec);
        break;
      default:
        break;  // aborts/checkpoint markers carry no work
    }
    return true;
  }));

  // --- syslogs passes 2+3: sharded undo-then-redo ---------------------------
  // Sharding by RID keeps every record of one RID in one shard in log
  // order, which is all the undo/redo ordering argument above needs
  // (different RIDs are independent under value logging). Heap mutations
  // synchronize on buffer-cache page latches.
  {
    std::vector<std::function<void()>> tasks;
    for (int s = 0; s < kRecoveryShards; ++s) {
      tasks.push_back([&, s] {
        const std::vector<LogRecord>& records = ps_shards[s];
        CursorTracker& cursors = shard_cursors[s];
        auto place_or_update = [&](TablePartition* part, Rid rid,
                                   const std::string& data) {
          if (part->heap->Exists(rid)) {
            Status st = part->heap->Update(rid, Slice(data));
            (void)st;
          } else {
            Status st = part->heap->Place(rid, Slice(data));
            (void)st;
          }
        };
        auto delete_tolerant = [&](TablePartition* part, Rid rid) {
          Status st = part->heap->Delete(rid);
          (void)st;
        };

        // Undo losers in reverse order.
        for (auto it = records.rbegin(); it != records.rend(); ++it) {
          const LogRecord& rec = *it;
          if (winners.find(rec.txn_id) != winners.end()) continue;
          Rid rid;
          TablePartition* part = part_for_rid(rec.rid, &rid);
          if (part == nullptr) continue;
          cursors.See(rid, part->heap->slots_per_page());
          switch (rec.type) {
            case LogRecordType::kPsInsert:
              delete_tolerant(part, rid);
              break;
            case LogRecordType::kPsUpdate:
            case LogRecordType::kPsDelete:
              place_or_update(part, rid, rec.before);
              break;
            default:
              break;
          }
        }
        // Redo winners in log order.
        for (const LogRecord& rec : records) {
          if (winners.find(rec.txn_id) == winners.end()) continue;
          Rid rid;
          TablePartition* part = part_for_rid(rec.rid, &rid);
          if (part == nullptr) continue;
          cursors.See(rid, part->heap->slots_per_page());
          switch (rec.type) {
            case LogRecordType::kPsInsert:
            case LogRecordType::kPsUpdate:
              place_or_update(part, rid, rec.after);
              break;
            case LogRecordType::kPsDelete:
              delete_tolerant(part, rid);
              break;
            default:
              break;
          }
        }
      });
    }
    run_sharded(std::move(tasks));
  }

  // --- cold-columnar ops: serial undo-then-redo on the loaded base ----------
  // Same undo/redo argument as the heap: cold placements are value-logged
  // under the row's exclusive lock, so per-rid segments never interleave.
  // Cold and heap mutations of one rid target disjoint structures, so
  // running this after the sharded heap pass preserves nothing it needs —
  // each store's final state is decided by its own last op.
  {
    Status cold_status;
    auto cold_place = [&](const LogRecord& rec, const std::string& data) {
      if (!cold_status.ok()) return;
      // Skip placements already covered by the loaded segment base: replay
      // after a flush would otherwise re-stage (and eventually re-seal)
      // identical rows on every recovery.
      std::string current;
      if (cold_->ReadRow(Rid::Decode(rec.rid), &current).ok() &&
          current == data) {
        return;
      }
      cold_status = cold_->Place(rec.table_id, rec.partition_id,
                                 Rid::Decode(rec.rid), Slice(data));
    };
    // Undo losers in reverse order.
    for (auto it = cold_ops.rbegin(); it != cold_ops.rend(); ++it) {
      const LogRecord& rec = *it;
      if (winners.find(rec.txn_id) != winners.end()) continue;
      Rid rid;
      TablePartition* part = part_for_rid(rec.rid, &rid);
      if (part == nullptr) continue;
      shard_cursors[ShardForRid(rec.rid)].See(rid,
                                              part->heap->slots_per_page());
      if (rec.type == LogRecordType::kColdPlace) {
        if (rec.before.empty()) {
          cold_->Erase(rid);
        } else {
          cold_place(rec, rec.before);
        }
      } else {  // kColdErase
        cold_place(rec, rec.before);
      }
    }
    // Redo winners in log order.
    for (const LogRecord& rec : cold_ops) {
      if (winners.find(rec.txn_id) == winners.end()) continue;
      Rid rid;
      TablePartition* part = part_for_rid(rec.rid, &rid);
      if (part == nullptr) continue;
      shard_cursors[ShardForRid(rec.rid)].See(rid,
                                              part->heap->slots_per_page());
      if (rec.type == LogRecordType::kColdPlace) {
        cold_place(rec, rec.after);
      } else {  // kColdErase
        cold_->Erase(rid);
      }
    }
    BTRIM_RETURN_IF_ERROR(cold_status);
  }

  // --- sysimrslogs pass 1: collect groups, markers, checkpoints (serial) ----
  struct Group {
    uint64_t cts = 0;
    uint8_t source = 0;
    uint64_t txn_id = 0;
    int64_t commit_ordinal = -1;
    std::vector<LogRecord> ops;
  };
  std::vector<Group> groups;                       // committed, in log order
  std::unordered_map<uint64_t, std::vector<LogRecord>> pending;
  std::unordered_map<uint64_t, std::vector<LogRecord>> snapshots;  // by epoch
  int64_t last_marker = -1;
  // Complete begin/end pairs. checkpoint_mu_ serializes checkpointers, so
  // pairs never nest; a begin superseded by a newer begin (its checkpoint
  // died before the end record) is simply forgotten.
  int64_t open_begin_ordinal = -1;
  uint64_t open_begin_ts = 0;
  int64_t chosen_begin_ordinal = -1;
  uint64_t chosen_ts = 0;
  bool have_checkpoint = false;
  {
    int64_t ordinal = -1;
    BTRIM_RETURN_IF_ERROR(sysimrslogs_->Replay([&](const LogRecord& rec) {
      ++ordinal;
      switch (rec.type) {
        case LogRecordType::kCheckpoint:
          last_marker = ordinal;
          break;
        case LogRecordType::kCheckpointBegin:
          open_begin_ordinal = ordinal;
          open_begin_ts = rec.cts;
          if (rec.cts > max_cts) max_cts = rec.cts;
          break;
        case LogRecordType::kCheckpointEnd:
          if (open_begin_ordinal >= 0 && rec.cts == open_begin_ts) {
            chosen_begin_ordinal = open_begin_ordinal;
            chosen_ts = open_begin_ts;
            have_checkpoint = true;
            open_begin_ordinal = -1;
          }
          if (rec.cts > max_cts) max_cts = rec.cts;
          break;
        case LogRecordType::kImrsSnapshotRow:
        case LogRecordType::kImrsSnapshotDel:
          // txn_id carries the owning checkpoint's epoch, not a
          // transaction id (checkpoint.cc); keep it out of max_txn_id.
          snapshots[rec.txn_id].push_back(rec);
          if (rec.cts > max_cts) max_cts = rec.cts;
          break;
        case LogRecordType::kImrsCommit: {
          if (rec.txn_id > max_txn_id) max_txn_id = rec.txn_id;
          if (rec.cts > max_cts) max_cts = rec.cts;
          auto it = pending.find(rec.txn_id);
          if (it == pending.end()) break;
          Group g;
          g.cts = rec.cts;
          g.source = rec.source;
          g.txn_id = rec.txn_id;
          g.commit_ordinal = ordinal;
          g.ops = std::move(it->second);
          pending.erase(it);
          groups.push_back(std::move(g));
          break;
        }
        default:
          if (rec.txn_id > max_txn_id) max_txn_id = rec.txn_id;
          pending[rec.txn_id].push_back(rec);
          break;
      }
      return true;
    }));
  }
  pending.clear();  // torn tail / uncommitted groups are dropped

  // --- sysimrslogs pass 2: sharded snapshot + group application -------------
  // Per shard: the chosen checkpoint's snapshot rows first, then surviving
  // groups' operations in log order. A RID's snapshot record precedes its
  // post-snapshot operations, and all of one RID's records land in one
  // shard, so per-RID application order is exactly log order.
  struct ImrsOp {
    const LogRecord* rec;
    uint64_t cts;       // group commit ts (snapshot records carry their own)
    bool from_snapshot;
  };
  std::array<std::vector<ImrsOp>, kRecoveryShards> imrs_shards;
  if (have_checkpoint) {
    auto snap_it = snapshots.find(chosen_ts);
    if (snap_it != snapshots.end()) {
      for (const LogRecord& rec : snap_it->second) {
        imrs_shards[ShardForRid(rec.rid)].push_back(
            ImrsOp{&rec, rec.cts, /*from_snapshot=*/true});
      }
    }
  }
  for (const Group& g : groups) {
    // Rebase: groups before the chosen begin record are inside the
    // snapshot; their effects arrive via the snapshot rows above.
    if (have_checkpoint && g.commit_ordinal < chosen_begin_ordinal) continue;
    // Cross-log arbitration (see the file comment): mixed-store groups
    // after the last quiescent marker need their syslogs commit too.
    if (g.source != 0 && g.commit_ordinal > last_marker &&
        winners.find(g.txn_id) == winners.end()) {
      continue;
    }
    for (const LogRecord& op : g.ops) {
      imrs_shards[ShardForRid(op.rid)].push_back(
          ImrsOp{&op, g.cts, /*from_snapshot=*/false});
    }
  }

  {
    std::array<Status, kRecoveryShards> shard_status;
    std::vector<std::function<void()>> tasks;
    for (int s = 0; s < kRecoveryShards; ++s) {
      tasks.push_back([&, s] {
        CursorTracker& cursors = shard_cursors[s];
        Status& apply_status = shard_status[s];
        for (const ImrsOp& item : imrs_shards[s]) {
          if (!apply_status.ok()) break;
          const LogRecord& op = *item.rec;
          const uint64_t cts = item.cts;
          Rid rid;
          TablePartition* part = part_for_rid(op.rid, &rid);
          if (part == nullptr) continue;
          cursors.See(rid, part->heap->slots_per_page());
          PartitionState* pstate = part->ilm;
          ImrsRow* row = rid_map_.Lookup(rid);

          switch (op.type) {
            case LogRecordType::kImrsSnapshotRow:
            case LogRecordType::kImrsSnapshotDel: {
              // The snapshot walk and the CoW stash can both serialize the
              // same row; the first record wins (they are identical).
              if (row != nullptr) break;
              int64_t bytes = 0;
              Result<ImrsRow*> created = imrs_->CreateRow(
                  rid, op.table_id, op.partition_id,
                  static_cast<RowSource>(op.source), Slice(op.after),
                  /*txn_id=*/0, /*now=*/cts, &bytes);
              if (!created.ok()) {
                apply_status = created.status();
                break;
              }
              RowVersion* head =
                  (*created)->latest.load(std::memory_order_acquire);
              head->commit_ts.store(cts, std::memory_order_release);
              if (op.type == LogRecordType::kImrsSnapshotDel) {
                head->is_delete = true;  // tombstone masking its page home
              }
              pstate->metrics.imrs_bytes.Add(bytes);
              pstate->metrics.imrs_rows.Add(1);
              break;
            }
            case LogRecordType::kImrsInsert: {
              if (row != nullptr) break;  // duplicate insert cannot happen
              int64_t bytes = 0;
              Result<ImrsRow*> created = imrs_->CreateRow(
                  rid, op.table_id, op.partition_id,
                  static_cast<RowSource>(op.source), Slice(op.after),
                  /*txn_id=*/0, /*now=*/cts, &bytes);
              if (!created.ok()) {
                apply_status = created.status();
                break;
              }
              (*created)->latest.load(std::memory_order_acquire)
                  ->commit_ts.store(cts, std::memory_order_release);
              pstate->metrics.imrs_bytes.Add(bytes);
              pstate->metrics.imrs_rows.Add(1);
              break;
            }
            case LogRecordType::kImrsUpdate:
            case LogRecordType::kImrsDelete: {
              if (row == nullptr) break;  // packed earlier in the log
              const bool is_delete = op.type == LogRecordType::kImrsDelete;
              const std::string& data = is_delete ? op.before : op.after;
              // Replace the latest version: pre-crash history is
              // unreachable by every post-recovery snapshot.
              RowVersion* old = row->latest.load(std::memory_order_acquire);
              int64_t bytes = 0;
              Result<RowVersion*> added = imrs_->AddVersion(
                  row, Slice(data), is_delete, /*txn_id=*/0, &bytes);
              if (!added.ok()) {
                apply_status = added.status();
                break;
              }
              (*added)->commit_ts.store(cts, std::memory_order_release);
              (*added)->older.store(nullptr, std::memory_order_release);
              pstate->metrics.imrs_bytes.Add(bytes);
              if (old != nullptr) {
                pstate->metrics.imrs_bytes.Sub(
                    ImrsStore::FragmentCharge(old));
                imrs_->FreeVersion(old);
              }
              row->Touch(cts);
              break;
            }
            case LogRecordType::kImrsPack: {
              if (row == nullptr) break;
              const int64_t footprint = ImrsStore::RowFootprint(row);
              rid_map_.Erase(rid);
              RowVersion* v = row->latest.load(std::memory_order_acquire);
              while (v != nullptr) {
                RowVersion* next = v->older.load(std::memory_order_relaxed);
                imrs_->FreeVersion(v);
                v = next;
              }
              imrs_->FreeRow(row);
              pstate->metrics.imrs_bytes.Sub(footprint);
              pstate->metrics.imrs_rows.Sub(1);
              break;
            }
            default:
              break;
          }
        }
      });
    }
    run_sharded(std::move(tasks));
    for (const Status& st : shard_status) {
      BTRIM_RETURN_IF_ERROR(st);
    }
  }

  // --- drop fully-dead tombstones -------------------------------------------
  // Replay resurrects every logged tombstone, but GC's IMRS-side free is
  // unlogged, so some of them were already collected before the crash. A
  // committed tombstone earns its keep only by masking a still-materialized
  // page-store home (older in-memory snapshots are gone after a crash);
  // when no home exists — the row never had one (kInserted), or GC's purge
  // transaction (a kPsDelete winner, redone above) emptied it — keeping the
  // row is not just wasteful but wrong: its rebuilt index entry would
  // shadow a later re-insert of the same key, and a purged home makes it a
  // row GC cannot purge again. Complete the free here instead.
  {
    struct DeadRow {
      Rid rid;
      ImrsRow* row;
      PartitionState* pstate;
    };
    std::vector<DeadRow> dead;
    rid_map_.ForEach([&](Rid rid, ImrsRow* row) {
      RowVersion* latest = ImrsStore::LatestCommitted(row);
      if (latest == nullptr || !latest->is_delete) return;
      Rid decoded;
      TablePartition* part = part_for_rid(rid.Encode(), &decoded);
      if (part == nullptr || part->heap->Exists(rid) ||
          cold_->Exists(rid)) {
        return;  // still masks a materialized home (heap or cold-columnar)
      }
      dead.push_back(DeadRow{rid, row, part->ilm});
    });
    for (const DeadRow& d : dead) {
      const int64_t footprint = ImrsStore::RowFootprint(d.row);
      rid_map_.Erase(d.rid);
      RowVersion* v = d.row->latest.load(std::memory_order_acquire);
      while (v != nullptr) {
        RowVersion* next = v->older.load(std::memory_order_relaxed);
        imrs_->FreeVersion(v);
        v = next;
      }
      imrs_->FreeRow(d.row);
      d.pstate->metrics.imrs_bytes.Sub(footprint);
      d.pstate->metrics.imrs_rows.Sub(1);
    }
  }

  // --- restore allocation cursors (serial merge, before any heap scan) ------
  // The cursor must cover every RID named in a log or snapshot record and
  // every occupied slot of the durable page images: a checkpoint truncates
  // syslogs, so checkpointed rows' RIDs survive only as page contents or
  // snapshot rows, and a cursor short of them would re-issue their RIDs
  // (overwriting durable rows) and hide them from the index-rebuild scan
  // below.
  CursorTracker cursors;
  for (const CursorTracker& shard : shard_cursors) cursors.Merge(shard);
  // Cold rows' heap slots are vacated at pack, so MaxDurableRow cannot see
  // them, and after a truncation their rids survive only in the segment
  // file — sweep the cold index so AllocateRid never re-issues them.
  cold_->ForEachRid([&](Rid rid) {
    Rid decoded;
    TablePartition* part = part_for_rid(rid.Encode(), &decoded);
    if (part != nullptr) cursors.See(decoded, part->heap->slots_per_page());
  });
  for (Table* table : Tables()) {
    for (size_t p = 0; p < table->num_partitions(); ++p) {
      HeapFile* heap = table->partition(p).heap.get();
      uint64_t cursor = cursors.CursorFor(heap->file_id());
      const Device* dev = devices_[heap->file_id()].get();
      Result<uint64_t> durable = heap->MaxDurableRow(dev->NumPages());
      if (!durable.ok()) return durable.status();
      heap->SetRowCursor(std::max(cursor, *durable));
    }
  }

  // --- rebuild indexes (sharded: OLC trees take concurrent inserts) ---------
  {
    std::vector<std::function<void()>> tasks;
    // Page-store rows, one task per partition, skipping rows masked by an
    // IMRS-resident row. ScanAll synchronizes on page latches; B+Tree and
    // hash-index inserts are concurrent-safe (OLC / striped locks).
    size_t num_parts = 0;
    for (Table* table : Tables()) num_parts += table->num_partitions();
    // Sized up front: tasks capture pointers into it.
    std::vector<Status> scan_status(num_parts);
    size_t part_idx = 0;
    for (Table* table : Tables()) {
      for (size_t p = 0; p < table->num_partitions(); ++p) {
        Status* out = &scan_status[part_idx++];
        TablePartition* part = &table->partition(p);
        tasks.push_back([this, table, part, out] {
          *out = part->heap->ScanAll([&](Rid rid, Slice payload) {
            if (rid_map_.Lookup(rid) != nullptr) return true;  // IMRS wins
            const std::string pk = table->pk_encoder().KeyForRecord(payload);
            Status is =
                table->primary_index()->Insert(Slice(pk), rid.Encode());
            (void)is;
            for (SecondaryIndex& sec : table->secondaries()) {
              std::string skey = sec.encoder->KeyForRecord(payload);
              if (!sec.def.unique) {
                skey = BTree::MakeNonUniqueKey(Slice(skey), rid);
              }
              is = sec.tree->Insert(Slice(skey), rid.Encode());
              (void)is;
            }
            return true;
          });
        });
      }
    }
    run_sharded(std::move(tasks));
    for (const Status& st : scan_status) {
      BTRIM_RETURN_IF_ERROR(st);
    }
  }
  // Cold-columnar rows (serial sweep: the same IMRS-wins masking rule as
  // the heap scan; no hash-index entries — the hash index is IMRS-only).
  cold_->ForEachLive([this](uint32_t table_id, uint32_t partition_id,
                            Rid rid, const std::string& payload) {
    (void)partition_id;
    if (rid_map_.Lookup(rid) != nullptr) return;  // IMRS wins
    Table* table = GetTable(table_id);
    if (table == nullptr) return;
    const std::string pk = table->pk_encoder().KeyForRecord(Slice(payload));
    Status is = table->primary_index()->Insert(Slice(pk), rid.Encode());
    (void)is;
    for (SecondaryIndex& sec : table->secondaries()) {
      std::string skey = sec.encoder->KeyForRecord(Slice(payload));
      if (!sec.def.unique) {
        skey = BTree::MakeNonUniqueKey(Slice(skey), rid);
      }
      is = sec.tree->Insert(Slice(skey), rid.Encode());
      (void)is;
    }
  });
  {
    // IMRS rows: collect entries once, then shard the sweep.
    std::vector<std::pair<Rid, ImrsRow*>> entries;
    rid_map_.ForEach([&entries](Rid rid, ImrsRow* row) {
      entries.emplace_back(rid, row);
    });
    std::vector<std::function<void()>> tasks;
    for (int s = 0; s < kRecoveryShards; ++s) {
      tasks.push_back([&, s] {
        for (const auto& [rid, row] : entries) {
          if (ShardForRid(rid.Encode()) != s) continue;
          Table* table = GetTable(row->table_id);
          if (table == nullptr) continue;
          RowVersion* latest = ImrsStore::LatestCommitted(row);
          if (latest == nullptr) continue;
          const Slice payload(latest->data(), latest->data_size);
          const std::string pk = table->pk_encoder().KeyForRecord(payload);
          // Tombstones keep their index entries until GC purges them
          // (older snapshots are gone after a crash, but purge also
          // removes the page-store home, so the entries stay until then).
          Status is = table->primary_index()->Insert(Slice(pk), rid.Encode());
          (void)is;
          for (SecondaryIndex& sec : table->secondaries()) {
            std::string skey = sec.encoder->KeyForRecord(payload);
            if (!sec.def.unique) {
              skey = BTree::MakeNonUniqueKey(Slice(skey), rid);
            }
            is = sec.tree->Insert(Slice(skey), rid.Encode());
            (void)is;
          }
          if (!latest->is_delete && table->hash_index() != nullptr) {
            table->hash_index()->Upsert(Slice(pk), row);
          }
          // Rejoin ILM tracking and GC processing.
          ilm_->EnqueueRow(row);
          gc_->EnqueueCommitted(row, /*newly_created=*/false);
        }
      });
    }
    run_sharded(std::move(tasks));
  }

  // --- restore the commit clock and txn-id epoch ----------------------------
  txn_manager_.commit_clock()->Reset(max_cts);
  txn_manager_.AdvancePastTxnId(max_txn_id);
  return Status::OK();
}

}  // namespace btrim
