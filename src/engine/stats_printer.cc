#include "engine/stats_printer.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <map>

#include "obs/metrics_registry.h"

namespace btrim {

namespace {

void Appendf(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void Appendf(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out->append(buf);
}

double Pct(int64_t part, int64_t whole) {
  return whole > 0 ? 100.0 * static_cast<double>(part) /
                         static_cast<double>(whole)
                   : 0.0;
}

void AppendCommitterLine(std::string* out, const char* label,
                         const GroupCommitStats& gc) {
  if (gc.groups_committed == 0) return;  // committer never used
  Appendf(out,
          "%s: %" PRId64 " groups in %" PRId64
          " batches (%.1f/batch, %.1f KiB avg, max %" PRId64
          "), latency p50/p95/p99 %" PRId64 "/%" PRId64 "/%" PRId64 " us\n",
          label, gc.groups_committed, gc.batches, gc.GroupsPerBatch(),
          gc.AvgBatchBytes() / 1024.0, gc.max_batch_groups,
          gc.commit_latency.PercentileUs(0.50),
          gc.commit_latency.PercentileUs(0.95),
          gc.commit_latency.PercentileUs(0.99));
}

}  // namespace

std::string FormatDatabaseStats(const DatabaseStats& s) {
  std::string out;
  Appendf(&out, "transactions : %" PRId64 " committed, %" PRId64
                " aborted, %" PRId64 " active\n",
          s.txns.committed, s.txns.aborted, s.txns.active);
  Appendf(&out,
          "op routing   : %" PRId64 " IMRS / %" PRId64
          " page-store (hit rate %.1f%%)\n",
          s.imrs_operations, s.page_operations,
          Pct(s.imrs_operations, s.imrs_operations + s.page_operations));
  Appendf(&out,
          "IMRS cache   : %" PRId64 " / %" PRId64 " KiB in use (%.1f%%), "
          "%" PRId64 " rows mapped\n",
          s.imrs_cache.in_use_bytes / 1024, s.imrs_cache.capacity_bytes / 1024,
          Pct(s.imrs_cache.in_use_bytes, s.imrs_cache.capacity_bytes),
          s.rid_map.entries);
  Appendf(&out,
          "buffer cache : %" PRId64 " fixes, %.1f%% hits, %" PRId64
          " evictions, %" PRId64 " latch waits\n",
          s.buffer_cache.fixes,
          Pct(s.buffer_cache.hits, s.buffer_cache.fixes),
          s.buffer_cache.evictions, s.buffer_cache.latch_contention);
  Appendf(&out,
          "locks        : %" PRId64 " acquisitions (%" PRId64
          " fast), %" PRId64 " waits, %" PRId64 " timeouts, %" PRId64
          " cond. denials\n",
          s.locks.acquisitions, s.locks.fast_grants, s.locks.waits,
          s.locks.timeouts, s.locks.try_failures);
  Appendf(&out,
          "index        : %" PRId64 " searches, %" PRId64
          " inserts, %" PRId64 " splits, %" PRId64 " OLC restarts, %" PRId64
          " pessimistic, %" PRId64 "/%" PRId64 " pages retired/reclaimed\n",
          s.index.searches, s.index.inserts, s.index.splits,
          s.index.olc_restarts, s.index.pessimistic_descents,
          s.index.pages_retired, s.index.pages_reclaimed);
  Appendf(&out,
          "GC           : %" PRId64 " versions freed (%" PRId64
          " KiB), %" PRId64 " rows purged, %" PRId64 " pending\n",
          s.gc.versions_freed, s.gc.bytes_freed / 1024, s.gc.rows_purged,
          s.gc.work_pending);
  Appendf(&out,
          "Pack         : %" PRId64 " cycles, %" PRId64 " rows (%" PRId64
          " KiB) packed, %" PRId64 " skipped hot, %" PRId64
          " pack txns, %" PRId64 " bypasses\n",
          s.pack.cycles, s.pack.rows_packed, s.pack.bytes_packed / 1024,
          s.pack.rows_skipped_hot, s.pack.pack_transactions,
          s.pack.bypass_activations);
  Appendf(&out,
          "syslogs      : %" PRId64 " records, %" PRId64 " KiB, %" PRId64
          " syncs (%" PRId64 " elided), %" PRId64 "/%" PRId64
          " failed appends/syncs\n",
          s.syslogs.records_appended, s.syslogs.bytes_appended / 1024,
          s.syslogs.syncs, s.syslogs.syncs_elided, s.syslogs.append_failures,
          s.syslogs.sync_failures);
  Appendf(&out,
          "sysimrslogs  : %" PRId64 " records in %" PRId64
          " groups, %" PRId64 " KiB, %" PRId64 " syncs (%" PRId64
          " elided), %" PRId64 "/%" PRId64 " failed appends/syncs\n",
          s.sysimrslogs.records_appended, s.sysimrslogs.groups_appended,
          s.sysimrslogs.bytes_appended / 1024, s.sysimrslogs.syncs,
          s.sysimrslogs.syncs_elided, s.sysimrslogs.append_failures,
          s.sysimrslogs.sync_failures);
  AppendCommitterLine(&out, "commit(sys)  ", s.syslogs_commit);
  AppendCommitterLine(&out, "commit(imrs) ", s.sysimrslogs_commit);
  return out;
}

std::string FormatTableBreakdown(Database* db) {
  // Built from the metrics registry, not the live partition objects: a
  // partition retired mid-run keeps reporting through its retained samples
  // (the old implementation walked db->Tables() and silently dropped its
  // pack/skip counts from the final report).
  struct Row {
    int64_t mode = 1;
    bool retained = false;
    int64_t imrs_rows = 0;
    int64_t imrs_bytes = 0;
    int64_t reuse = 0;
    int64_t new_rows = 0;
    int64_t packed = 0;
    int64_t skipped = 0;
  };
  std::map<std::string, Row> rows;  // "table/partition" -> row
  for (const obs::MetricSample& s : db->metrics_registry()->Snapshot()) {
    if (s.name.rfind("partition.", 0) != 0 || s.labels.table.empty()) continue;
    Row& r = rows[s.labels.table + "/" + s.labels.partition];
    if (s.retained) r.retained = true;
    if (s.name == "partition.mode") {
      r.mode = s.value;
    } else if (s.name == "partition.imrs_rows") {
      r.imrs_rows = s.value;
    } else if (s.name == "partition.imrs_bytes") {
      r.imrs_bytes = s.value;
    } else if (s.name == "partition.reuse_select" ||
               s.name == "partition.reuse_update" ||
               s.name == "partition.reuse_delete") {
      r.reuse += s.value;
    } else if (s.name == "partition.inserts_imrs" ||
               s.name == "partition.migrations" ||
               s.name == "partition.cachings") {
      r.new_rows += s.value;
    } else if (s.name == "partition.rows_packed") {
      r.packed = s.value;
    } else if (s.name == "partition.rows_skipped_hot") {
      r.skipped = s.value;
    }
  }

  std::string out;
  Appendf(&out, "%-24s %-9s %9s %10s %10s %10s %9s %9s\n", "table/partition",
          "imrs", "rows", "KiB", "reuse", "new_rows", "packed", "skipped");
  for (const auto& [name, r] : rows) {
    const char* mode = r.retained       ? "retired"
                       : r.mode == 2    ? "pinned"
                       : r.mode == 1    ? "enabled"
                                        : "disabled";
    Appendf(&out,
            "%-24s %-9s %9" PRId64 " %10" PRId64 " %10" PRId64 " %10" PRId64
            " %9" PRId64 " %9" PRId64 "\n",
            name.c_str(), mode, r.imrs_rows, r.imrs_bytes / 1024, r.reuse,
            r.new_rows, r.packed, r.skipped);
  }
  return out;
}

}  // namespace btrim
