#!/usr/bin/env python3
"""CI perf-regression gate over micro_commit/micro_pack output and the
metrics export.

Compares a fresh `micro_commit --out` JSON against the checked-in baseline
(bench/BENCH_micro_commit.json) using machine-portable invariants only —
absolute throughput depends on the runner, so the gate checks *shape*:

  1. fsyncs/commit must not regress: for every (policy, workers) cell in
     both files, current <= baseline * (1 + threshold) + epsilon. This is
     the core group-commit property (sync amortization) and is hardware
     independent.
  2. group-commit speedup must hold: within the *current* run,
     tps(group_commit) / tps(sync_per_commit) at the same worker count
     must not drop more than `threshold` below the same ratio in the
     baseline. Normalizing by the same-run sync cell cancels machine speed.
  3. group_commit at >= 4 workers must batch at all (fsyncs/commit < 1.0),
     mirroring micro_commit's own --smoke gate.
  4. Optionally (--metrics), a tpcc_cli/bench metrics export must cover the
     required metric names — the "every previously printed stats field is
     exported" acceptance check.
  5. Optionally (--pack-current/--pack-baseline), a `micro_pack --smoke
     --out` JSON is gated the same way: within the current run 4-worker
     pack throughput must be >= 2x 1-worker for every IMRS size (the
     within-run ratio cancels machine speed, and the device sleeps are
     simulated so the workload is latency-bound on any runner), and
     packed bytes/cycle — deterministic by construction — must not
     regress against the checked-in bench/BENCH_micro_pack.json.
  6. Optionally (--index-current/--index-baseline), a `micro_index --out`
     JSON is gated on the OLC read-scaling property: point_read tps at 8
     threads must be >= 3x the 1-thread cell, and TPC-C tps at 8 workers
     must be >= the 1-worker cell. Index reads are CPU-bound (not
     simulated-latency-bound like pack), so these ratios only exist where
     the hardware can express them: the floors scale with the hw_threads
     field the bench records (>= 4 hw threads -> full floors; 2-3 ->
     1.4x reads only; 1 -> liveness and shape checks only). The
     single-threaded insert cell's splits-per-insert — deterministic by
     construction — must also stay within threshold of the checked-in
     bench/BENCH_micro_index.json.
  7. Optionally (--server-current/--server-baseline), a `micro_server
     --out` JSON is gated on liveness, error-freedom, zero admission sheds
     at low load, a liveness-grade p99 ceiling, and within-run concurrency
     sanity (4-thread throughput >= 0.5x 1-thread). With --server-metrics,
     a btrim_server metrics export must cover every name in the manifest's
     "server_required" (net.*) list.

Exit 0 when green; exit 1 with one line per violation otherwise.
"""

import argparse
import json
import os
import sys

# The required-metric names live in tools/required_metrics.json next to
# this script: "required" is every stats field FormatDatabaseStats() used
# to print plus the cold-columnar counters (ISSUE: >= 95% coverage; we
# require 100% of the enumerated list), "known_optional" is the rest of
# the exported universe. A metrics export containing a name in neither
# list fails the drift lint — new metrics must be recorded in the manifest.
MANIFEST_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                             "required_metrics.json")


def load_manifest(errors):
    """Loads and lints the metric-name manifest. Returns (required,
    known_optional, server_required) as lists; appends lint violations to
    `errors`. `server_required` is the net.* surface a btrim_server export
    must cover; it is disjoint from the other two because pre-server
    workloads (tpcc_cli, the benches) never register net.* metrics."""
    try:
        with open(MANIFEST_PATH) as f:
            manifest = json.load(f)
    except (OSError, ValueError) as e:
        errors.append(f"metric manifest {MANIFEST_PATH}: unreadable ({e})")
        return [], [], []
    out = []
    for key in ("required", "known_optional", "server_required"):
        names = manifest.get(key)
        if (not isinstance(names, list)
                or not all(isinstance(n, str) for n in names)):
            errors.append(
                f"metric manifest: '{key}' must be a list of strings")
            names = []
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            errors.append(f"metric manifest: duplicate names in '{key}': "
                          f"{', '.join(dupes)}")
        if names != sorted(names):
            errors.append(f"metric manifest: '{key}' must be sorted")
        out.append(names)
    for a, b in (("required", "known_optional"),
                 ("required", "server_required"),
                 ("known_optional", "server_required")):
        overlap = sorted(set(manifest.get(a) or []) &
                         set(manifest.get(b) or []))
        if overlap:
            errors.append(f"metric manifest: names in both '{a}' and "
                          f"'{b}': {', '.join(overlap)}")
    return out[0], out[1], out[2]

FSYNC_EPSILON = 0.05  # absolute slack for near-zero fsyncs/commit cells


def cells_by_key(doc):
    return {(c["policy"], c["workers"]): c for c in doc["results"]}


def check_bench(current, baseline, threshold, errors):
    cur = cells_by_key(current)
    base = cells_by_key(baseline)
    shared = sorted(set(cur) & set(base))
    if not shared:
        errors.append("no (policy, workers) cells shared with the baseline")
        return

    for key in shared:
        c, b = cur[key], base[key]
        limit = b["fsyncs_per_commit"] * (1.0 + threshold) + FSYNC_EPSILON
        if c["fsyncs_per_commit"] > limit:
            errors.append(
                f"{key}: fsyncs/commit regressed "
                f"{b['fsyncs_per_commit']:.3f} -> {c['fsyncs_per_commit']:.3f} "
                f"(limit {limit:.3f})")

    for policy, workers in shared:
        # The speedup property only exists where batching can happen; at 1-2
        # workers the group/sync ratio hovers around 1.0 and is pure noise.
        if policy != "group_commit" or workers < 4:
            continue
        sync_key = ("sync_per_commit", workers)
        if sync_key not in cur or sync_key not in base:
            continue
        if cur[sync_key]["tps"] <= 0 or base[sync_key]["tps"] <= 0:
            continue
        cur_ratio = cur[(policy, workers)]["tps"] / cur[sync_key]["tps"]
        base_ratio = base[(policy, workers)]["tps"] / base[sync_key]["tps"]
        if base_ratio > 0 and cur_ratio < base_ratio * (1.0 - threshold):
            errors.append(
                f"group/sync throughput ratio at {workers} workers dropped "
                f"{base_ratio:.2f} -> {cur_ratio:.2f} "
                f"(> {threshold:.0%} regression)")

    for (policy, workers), c in cur.items():
        if policy == "group_commit" and workers >= 4:
            if c["fsyncs_per_commit"] >= 1.0:
                errors.append(
                    f"group_commit at {workers} workers no longer batches: "
                    f"{c['fsyncs_per_commit']:.3f} fsyncs/commit")


PACK_SCALING_FLOOR = 2.0  # 4-worker / 1-worker pack throughput


def check_pack(current, baseline, threshold, errors):
    def by_key(doc):
        return {(c["imrs_mb"], c["workers"]): c for c in doc["results"]}

    cur = by_key(current)
    base = by_key(baseline)

    # Gate 1: within-run scaling. Every IMRS size that has both a 1- and a
    # 4-worker cell must show the parallel pipeline actually overlapping
    # its device waits.
    sizes = sorted({mb for (mb, _) in cur})
    gated = 0
    for mb in sizes:
        one = cur.get((mb, 1))
        four = cur.get((mb, 4))
        if one is None or four is None:
            continue
        gated += 1
        if one["rows_packed"] <= 0 or four["rows_packed"] <= 0:
            errors.append(f"micro_pack imrs_mb={mb}: a cell packed no rows")
            continue
        if one["mb_per_s"] <= 0:
            errors.append(f"micro_pack imrs_mb={mb}: 1-worker throughput is 0")
            continue
        ratio = four["mb_per_s"] / one["mb_per_s"]
        if ratio < PACK_SCALING_FLOOR:
            errors.append(
                f"micro_pack imrs_mb={mb}: 4-worker pack throughput is only "
                f"{ratio:.2f}x 1-worker (floor {PACK_SCALING_FLOOR:.1f}x)")
    if gated == 0:
        errors.append("micro_pack: no imrs_mb size has both 1- and 4-worker "
                      "cells to gate")

    # Gate 2: packed bytes/cycle vs the checked-in baseline. The drain is
    # deterministic (same rows, same budgets) so this is a tight check:
    # shrinkage means cycles suddenly move less data per unit of work.
    for key in sorted(set(cur) & set(base)):
        c, b = cur[key], base[key]
        if b["bytes_per_cycle"] <= 0:
            continue
        floor = b["bytes_per_cycle"] * (1.0 - threshold)
        if c["bytes_per_cycle"] < floor:
            errors.append(
                f"micro_pack {key}: bytes/cycle regressed "
                f"{b['bytes_per_cycle']:.0f} -> {c['bytes_per_cycle']:.0f} "
                f"(floor {floor:.0f})")


# Point-read throughput ratio, 8 threads over 1, and the TPC-C 8w/1w
# floor. Mirrored in bench/micro_index.cc's --smoke gate — keep in sync.
INDEX_READ_SCALING_FLOOR = 3.0   # enforced when hw_threads >= 4
INDEX_READ_SCALING_FLOOR_2T = 1.4  # enforced when hw_threads in [2, 3]
TPCC_SCALING_FLOOR = 1.0         # enforced when hw_threads >= 4


def check_index(current, baseline, threshold, errors):
    def by_key(doc):
        return {(c["mode"], c["threads"]): c for c in doc["results"]}

    cur = by_key(current)
    base = by_key(baseline)
    hw = int(current.get("hw_threads", 1))

    # Gate 1: liveness. Every cell must have done work at a nonzero rate.
    for key, c in sorted(cur.items()):
        if c["ops"] <= 0 or c["tps"] <= 0:
            errors.append(f"micro_index {key}: cell did no work")

    # Gate 2: read scaling, where the hardware can express it. Shared-latch
    # descents are the whole point of the OLC rewrite; a return to a
    # serializing tree lock shows up as a flat ratio on any multi-core box.
    one = cur.get(("point_read", 1))
    eight = cur.get(("point_read", 8))
    if one is None or eight is None:
        errors.append("micro_index: missing point_read 1- or 8-thread cell")
    elif one["tps"] > 0:
        floor = (INDEX_READ_SCALING_FLOOR if hw >= 4 else
                 INDEX_READ_SCALING_FLOOR_2T if hw >= 2 else 0.0)
        ratio = eight["tps"] / one["tps"]
        if floor > 0 and ratio < floor:
            errors.append(
                f"micro_index: point-read throughput at 8 threads is only "
                f"{ratio:.2f}x 1-thread (floor {floor:.1f}x on "
                f"{hw} hw threads)")
        print(f"micro_index: point-read 8t/1t = {ratio:.2f}x "
              f"(floor {floor:.1f}x on {hw} hw threads)")

    # Gate 3: the TPC-C floor — eight terminals must not run slower than
    # one through the full engine (locks, WAL, index) on real parallelism.
    t1 = cur.get(("tpcc", 1))
    t8 = cur.get(("tpcc", 8))
    if t1 is not None and t8 is not None and t1["tps"] > 0 and hw >= 4:
        ratio = t8["tps"] / t1["tps"]
        if ratio < TPCC_SCALING_FLOOR:
            errors.append(
                f"micro_index: TPC-C at 8 workers is {ratio:.2f}x 1-worker "
                f"(floor {TPCC_SCALING_FLOOR:.1f}x)")

    # Gate 4: single-threaded splits-per-insert vs the checked-in baseline.
    # The 1-thread insert cell is deterministic (same keys, same order), so
    # structural drift — e.g. splits suddenly cascading — is a tight check.
    key = ("insert", 1)
    if key in cur and key in base:
        c, b = cur[key], base[key]
        if c["ops"] > 0 and b["ops"] > 0 and b["splits"] > 0:
            cur_rate = c["splits"] / c["ops"]
            base_rate = b["splits"] / b["ops"]
            if cur_rate > base_rate * (1.0 + threshold):
                errors.append(
                    f"micro_index: splits/insert regressed "
                    f"{base_rate:.5f} -> {cur_rate:.5f} "
                    f"(> {threshold:.0%} above baseline)")


# The overlapped checkpoint's foreground stall budget: the begin barrier
# may cost at most this fraction of the full checkpoint duration (the
# quiescent design it replaced stalled commits for the whole duration, so
# this ratio is literally "new pause / old pause"). Mirrored in
# bench/micro_recovery.cc's --smoke gate — keep in sync.
CHECKPOINT_PAUSE_FRACTION = 0.10
CHECKPOINT_PAUSE_EPSILON_US = 500   # clock-granularity slack on fast runs
RECOVERY_SCALING_FLOOR = 2.0        # 1w/4w replay time, hw_threads >= 4
RECOVERY_SCALING_FLOOR_2T = 1.2     # enforced when hw_threads in [2, 3]


def check_recovery(current, baseline, errors):
    hw = int(current.get("hw_threads", 1))
    ckpt = current.get("checkpoint", {})
    cells = {c["workers"]: c for c in current.get("results", [])}

    # Gate 1: pause budget. Hardware-independent by construction — both
    # sides of the ratio come from the same run on the same machine.
    pause = ckpt.get("pause_us", -1)
    total = ckpt.get("total_us", 0)
    if pause < 0 or total <= 0:
        errors.append("micro_recovery: checkpoint pause/total metrics missing")
    elif pause > total * CHECKPOINT_PAUSE_FRACTION + CHECKPOINT_PAUSE_EPSILON_US:
        errors.append(
            f"micro_recovery: begin-barrier pause {pause}us exceeds "
            f"{CHECKPOINT_PAUSE_FRACTION:.0%} of checkpoint duration "
            f"{total}us")
    else:
        print(f"micro_recovery: pause/total = {pause / total:.2%} "
              f"(budget {CHECKPOINT_PAUSE_FRACTION:.0%})")

    # Gate 2: liveness + within-run determinism. Every worker count replays
    # the same logs, so the recovered row count and restored commit clock
    # must be byte-identical across cells. (They are NOT compared against
    # the baseline: the history includes rows from free-running writer
    # threads, so absolute counts vary run to run by design.)
    anchor = None
    for workers in sorted(cells):
        c = cells[workers]
        if c["imrs_rows"] <= 0 or c["recover_s"] <= 0:
            errors.append(f"micro_recovery workers={workers}: cell did no work")
            continue
        if anchor is None:
            anchor = c
        elif (c["imrs_rows"] != anchor["imrs_rows"]
              or c.get("clock_now") != anchor.get("clock_now")):
            errors.append(
                f"micro_recovery: workers={workers} recovered "
                f"{c['imrs_rows']} rows / clock {c.get('clock_now')} but "
                f"workers={anchor['workers']} recovered "
                f"{anchor['imrs_rows']} / {anchor.get('clock_now')} — "
                f"parallel replay is nondeterministic")

    # Gate 3: replay scaling, where the hardware can express it (same
    # hw-scaled floor scheme as micro_index; replay is CPU-bound).
    one = cells.get(1)
    four = cells.get(4)
    if one is None or four is None:
        errors.append("micro_recovery: missing 1- or 4-worker recovery cell")
    elif one["recover_s"] > 0 and four["recover_s"] > 0:
        floor = (RECOVERY_SCALING_FLOOR if hw >= 4 else
                 RECOVERY_SCALING_FLOOR_2T if hw >= 2 else 0.0)
        ratio = one["recover_s"] / four["recover_s"]
        if floor > 0 and ratio < floor:
            errors.append(
                f"micro_recovery: 4-worker replay is only {ratio:.2f}x "
                f"serial (floor {floor:.1f}x on {hw} hw threads)")
        print(f"micro_recovery: replay 4w speedup = {ratio:.2f}x "
              f"(floor {floor:.1f}x on {hw} hw threads)")

    # The baseline is a schema anchor only (absolute times and row counts
    # are machine- and run-specific): its presence must match this format.
    if baseline.get("results") is not None:
        for field in ("checkpoint", "hw_threads", "results"):
            if field not in baseline:
                errors.append(
                    f"micro_recovery: baseline missing '{field}' — "
                    f"regenerate bench/BENCH_micro_recovery.json")


# HTAP gates over micro_htap --out JSON. Constants mirrored in
# bench/micro_htap.cc's --smoke gate — keep in sync.
HTAP_COMPRESSION_FLOOR = 1.1    # cold bytes raw / compressed
HTAP_DIP_FLOOR = 0.3            # mixed/alone OLTP tpm, hw_threads >= 4
HTAP_DIP_FLOOR_1T = 0.2         # mixed/alone OLTP tpm, hw_threads < 4


def check_htap(current, baseline, threshold, errors):
    hw = int(current.get("hw_threads", 1))
    cold = current.get("cold", {})
    proj = current.get("projection", {})
    oltp = current.get("oltp", {})

    # Gate 1: Pack landed columnar data and it compressed. The ratio is
    # workload-determined (same tables, same generators), so it is also
    # compared against the checked-in baseline within threshold.
    if cold.get("rows", 0) <= 0 or cold.get("segments", 0) <= 0:
        errors.append(f"micro_htap: no cold columnar data "
                      f"(rows={cold.get('rows')} "
                      f"segments={cold.get('segments')})")
    ratio = cold.get("compression_ratio", 0.0)
    if ratio < HTAP_COMPRESSION_FLOOR:
        errors.append(
            f"micro_htap: compression ratio {ratio:.2f} below floor "
            f"{HTAP_COMPRESSION_FLOOR:.2f}")
    base_ratio = baseline.get("cold", {}).get("compression_ratio", 0.0)
    if base_ratio > 0 and ratio < base_ratio * (1.0 - threshold):
        errors.append(
            f"micro_htap: compression ratio regressed "
            f"{base_ratio:.2f} -> {ratio:.2f} "
            f"(> {threshold:.0%} below baseline)")

    # Gate 2: projection pushdown scans strictly fewer cold bytes than the
    # full-row scan. Hardware-independent: both sides come from the same
    # quiesced database.
    full = proj.get("full_bytes_scanned_cold", 0)
    projected = proj.get("projected_bytes_scanned_cold", 0)
    if projected <= 0 or full <= 0 or projected >= full:
        errors.append(
            f"micro_htap: projected scan ({projected}B) not cheaper than "
            f"full-row scan ({full}B)")
    else:
        print(f"micro_htap: projection scans {projected}B of {full}B cold "
              f"({projected / full:.0%}); compression {ratio:.2f}x")

    # Gate 3: the scanner made progress and OLTP kept a bounded fraction of
    # its standalone throughput under concurrent scans (within-run ratio,
    # hw-scaled floor as elsewhere).
    if oltp.get("scans_during_mixed", 0) < 1:
        errors.append("micro_htap: no query-suite pass finished during the "
                      "mixed phase")
    dip = oltp.get("dip_ratio", 0.0)
    floor = HTAP_DIP_FLOOR if hw >= 4 else HTAP_DIP_FLOOR_1T
    if dip < floor:
        errors.append(
            f"micro_htap: OLTP under concurrent scans kept only "
            f"{dip:.0%} of alone throughput (floor {floor:.0%} on "
            f"{hw} hw threads)")
    else:
        print(f"micro_htap: OLTP kept {dip:.0%} under scans "
              f"(floor {floor:.0%} on {hw} hw threads)")


# Gates over micro_server --out JSON. The floors are deliberately
# machine-portable: loopback RTT and runner core count dominate absolute
# numbers, so the gate checks liveness, error-freedom, the zero-shed
# property at low load, a liveness-grade p99 ceiling, and that concurrency
# does not collapse throughput within the same run. kSmoke* constants are
# mirrored in bench/micro_server.cc's --smoke gate — keep in sync.
SERVER_P99_CEILING_US = 2_000_000
SERVER_CONCURRENCY_COLLAPSE_FLOOR = 0.5  # tps(4t) / tps(1t)


def check_server(current, baseline, errors):
    cells = {c["threads"]: c for c in current.get("results", [])}
    if not cells:
        errors.append("micro_server: no result cells")
        return

    # Gate 1: liveness + error-freedom + zero sheds + p99 ceiling, per cell.
    for threads in sorted(cells):
        c = cells[threads]
        if c["ops"] <= 0 or c["tps"] <= 0:
            errors.append(f"micro_server threads={threads}: cell did no work")
            continue
        if c["errors"] > 0:
            errors.append(f"micro_server threads={threads}: "
                          f"{c['errors']} error replies")
        if c["sheds"] > 0:
            errors.append(f"micro_server threads={threads}: {c['sheds']} "
                          f"requests shed at low load")
        if c["p99_us"] > SERVER_P99_CEILING_US:
            errors.append(f"micro_server threads={threads}: p99 "
                          f"{c['p99_us']}us above {SERVER_P99_CEILING_US}us")

    # Gate 2: within-run concurrency sanity. Four client threads must keep
    # at least half of single-client throughput — a collapse here means the
    # lanes serialize (e.g. a lock held across engine calls).
    one = cells.get(1)
    four = cells.get(4)
    if one is None or four is None:
        errors.append("micro_server: missing 1- or 4-thread cell")
    elif one["tps"] > 0:
        ratio = four["tps"] / one["tps"]
        if ratio < SERVER_CONCURRENCY_COLLAPSE_FLOOR:
            errors.append(
                f"micro_server: 4-thread throughput is only {ratio:.2f}x "
                f"1-thread (floor {SERVER_CONCURRENCY_COLLAPSE_FLOOR:.1f}x)")
        else:
            print(f"micro_server: 4t/1t throughput = {ratio:.2f}x "
                  f"(floor {SERVER_CONCURRENCY_COLLAPSE_FLOOR:.1f}x)")

    # The baseline is a schema anchor (absolute tps is machine-specific):
    # its shape must match this format so drift is caught at review time.
    if baseline:
        if "hw_threads" not in baseline or "results" not in baseline:
            errors.append("micro_server: baseline missing 'hw_threads' or "
                          "'results' — regenerate "
                          "bench/BENCH_micro_server.json")
        else:
            fields = {"threads", "ops", "tps", "p50_us", "p99_us", "sheds",
                      "errors"}
            for cell in baseline["results"]:
                missing = sorted(fields - set(cell))
                if missing:
                    errors.append(
                        f"micro_server: baseline cell missing fields "
                        f"{', '.join(missing)} — regenerate "
                        f"bench/BENCH_micro_server.json")
                    break


def check_metrics_coverage(metrics_doc, errors):
    required, known_optional, server_required = load_manifest(errors)
    names = {m["name"] for m in metrics_doc["metrics"]}
    missing = [n for n in required if n not in names]
    covered = len(required) - len(missing)
    print(f"metrics coverage: {covered}/{len(required)} required "
          f"names present ({len(names)} exported)")
    for name in missing:
        errors.append(f"required metric missing from export: {name}")
    # Drift lint: every exported name must be recorded in the manifest, so
    # adding a metric without updating tools/required_metrics.json fails.
    # (server_required counts as known here: a combined export from a
    # server run legitimately carries net.* names.)
    known = set(required) | set(known_optional) | set(server_required)
    for name in sorted(names - known):
        errors.append(f"metric exported but absent from "
                      f"tools/required_metrics.json (manifest drift): {name}")


def check_server_metrics(metrics_doc, errors):
    """Coverage gate for a btrim_server --metrics-out export: every
    server_required (net.*) name present, plus the same drift lint. The
    tpcc.* driver names from the 'required' list are NOT expected here —
    the server has no in-process TpccDriver."""
    required, known_optional, server_required = load_manifest(errors)
    names = {m["name"] for m in metrics_doc["metrics"]}
    missing = [n for n in server_required if n not in names]
    covered = len(server_required) - len(missing)
    print(f"server metrics coverage: {covered}/{len(server_required)} "
          f"net.* names present ({len(names)} exported)")
    for name in missing:
        errors.append(f"server metric missing from export: {name}")
    known = set(required) | set(known_optional) | set(server_required)
    for name in sorted(names - known):
        errors.append(f"metric exported but absent from "
                      f"tools/required_metrics.json (manifest drift): {name}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current",
                        help="micro_commit --out JSON from this run")
    parser.add_argument("--baseline",
                        help="checked-in bench/BENCH_micro_commit.json")
    parser.add_argument("--metrics",
                        help="optional metrics export (tpcc_cli --metrics-out)"
                             " to validate coverage")
    parser.add_argument("--pack-current",
                        help="micro_pack --smoke --out JSON from this run")
    parser.add_argument("--pack-baseline",
                        help="checked-in bench/BENCH_micro_pack.json")
    parser.add_argument("--index-current",
                        help="micro_index --out JSON from this run")
    parser.add_argument("--index-baseline",
                        help="checked-in bench/BENCH_micro_index.json")
    parser.add_argument("--recovery-current",
                        help="micro_recovery --out JSON from this run")
    parser.add_argument("--recovery-baseline",
                        help="checked-in bench/BENCH_micro_recovery.json")
    parser.add_argument("--htap-current",
                        help="micro_htap --out JSON from this run")
    parser.add_argument("--htap-baseline",
                        help="checked-in bench/BENCH_micro_htap.json")
    parser.add_argument("--server-current",
                        help="micro_server --out JSON from this run")
    parser.add_argument("--server-baseline",
                        help="checked-in bench/BENCH_micro_server.json")
    parser.add_argument("--server-metrics",
                        help="btrim_server --metrics-out export to validate "
                             "net.* coverage")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="relative regression tolerance (default 0.25)")
    args = parser.parse_args()

    if not (args.current or args.pack_current or args.index_current
            or args.recovery_current or args.htap_current
            or args.server_current or args.server_metrics or args.metrics):
        parser.error("nothing to check: pass --current, --pack-current, "
                     "--index-current, --recovery-current, --htap-current, "
                     "--server-current, --server-metrics, and/or --metrics")

    errors = []
    if args.current:
        if not args.baseline:
            parser.error("--current requires --baseline")
        with open(args.current) as f:
            current = json.load(f)
        with open(args.baseline) as f:
            baseline = json.load(f)
        check_bench(current, baseline, args.threshold, errors)

    if args.pack_current:
        with open(args.pack_current) as f:
            pack_current = json.load(f)
        pack_baseline = {"results": []}
        if args.pack_baseline:
            with open(args.pack_baseline) as f:
                pack_baseline = json.load(f)
        check_pack(pack_current, pack_baseline, args.threshold, errors)

    if args.index_current:
        with open(args.index_current) as f:
            index_current = json.load(f)
        index_baseline = {"results": []}
        if args.index_baseline:
            with open(args.index_baseline) as f:
                index_baseline = json.load(f)
        check_index(index_current, index_baseline, args.threshold, errors)

    if args.recovery_current:
        with open(args.recovery_current) as f:
            recovery_current = json.load(f)
        recovery_baseline = {}
        if args.recovery_baseline:
            with open(args.recovery_baseline) as f:
                recovery_baseline = json.load(f)
        check_recovery(recovery_current, recovery_baseline, errors)

    if args.htap_current:
        with open(args.htap_current) as f:
            htap_current = json.load(f)
        htap_baseline = {}
        if args.htap_baseline:
            with open(args.htap_baseline) as f:
                htap_baseline = json.load(f)
        check_htap(htap_current, htap_baseline, args.threshold, errors)

    if args.server_current:
        with open(args.server_current) as f:
            server_current = json.load(f)
        server_baseline = {}
        if args.server_baseline:
            with open(args.server_baseline) as f:
                server_baseline = json.load(f)
        check_server(server_current, server_baseline, errors)

    if args.server_metrics:
        with open(args.server_metrics) as f:
            check_server_metrics(json.load(f), errors)

    if args.metrics:
        with open(args.metrics) as f:
            check_metrics_coverage(json.load(f), errors)

    if errors:
        for e in errors:
            print(f"REGRESSION: {e}", file=sys.stderr)
        return 1
    print("perf gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
