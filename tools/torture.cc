// Crash-point torture driver.
//
// Enumerates the storage operations of a deterministic workload, then
// replays the workload from scratch for a set of scripted crash points —
// every sync boundary (the durability lines), a stride over the remaining
// write/append operations, and seeded random extras up to --points — and
// after each crash recovers the database and verifies that acknowledged
// commits survive exactly, unacknowledged work resolves atomically, and
// nothing aborted resurfaces (src/testing/torture.h).
//
// Usage:
//   torture [--seed N] [--points N] [--txns N] [--dir PATH]
//           [--failures-file PATH] [--crash-op K] [--overlap]
//
// Every failure line carries (seed, crash_op); replay one with
// --seed N --crash-op K.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "common/lock_order.h"
#include "common/random.h"
#include "testing/torture.h"

namespace {

struct DriverOptions {
  uint64_t seed = 1;
  int points = 200;
  int txns = 80;
  std::string dir;
  std::string failures_file;
  int64_t crash_op = -1;  // >= 0: replay exactly one crash point
  int pack_workers = 1;
  bool overlap = false;
  bool cold_columnar = false;
  bool dump_trace = false;
};

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seed N] [--points N] [--txns N] [--dir PATH]\n"
               "          [--failures-file PATH] [--crash-op K]\n"
               "          [--pack-workers N] [--overlap] [--cold-columnar]\n",
               argv0);
  std::exit(2);
}

bool ParseArgs(int argc, char** argv, DriverOptions* opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) Usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--seed") {
      opt->seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--points") {
      opt->points = std::atoi(next());
    } else if (arg == "--txns") {
      opt->txns = std::atoi(next());
    } else if (arg == "--dir") {
      opt->dir = next();
    } else if (arg == "--failures-file") {
      opt->failures_file = next();
    } else if (arg == "--crash-op") {
      opt->crash_op = std::atoll(next());
    } else if (arg == "--pack-workers") {
      opt->pack_workers = std::atoi(next());
    } else if (arg == "--overlap") {
      opt->overlap = true;
    } else if (arg == "--cold-columnar") {
      opt->cold_columnar = true;
    } else if (arg == "--dump-trace") {
      opt->dump_trace = true;
    } else {
      Usage(argv[0]);
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  DriverOptions opt;
  ParseArgs(argc, argv, &opt);
  if (opt.dir.empty()) {
    opt.dir = std::filesystem::temp_directory_path().string() +
              "/btrim_torture_" + std::to_string(opt.seed);
  }

  btrim::testing::TortureConfig config;
  config.dir = opt.dir;
  config.workload_seed = opt.seed;
  config.num_txns = opt.txns;
  config.pack_workers = opt.pack_workers;
  config.overlapped_checkpoints = opt.overlap;
  config.cold_columnar = opt.cold_columnar;

  // Phase 1: fault-free traced run enumerates the op sequence.
  std::vector<btrim::TraceEntry> trace;
  btrim::Result<uint64_t> counted =
      btrim::testing::CountStorageOps(config, &trace);
  if (!counted.ok()) {
    std::fprintf(stderr, "trace run failed: %s\n",
                 counted.status().ToString().c_str());
    return 1;
  }
  const uint64_t total_ops = *counted;
  std::printf("seed %llu: workload issues %llu storage ops\n",
              static_cast<unsigned long long>(opt.seed),
              static_cast<unsigned long long>(total_ops));
  if (opt.dump_trace) {
    for (uint64_t i = 0; i < trace.size(); ++i) {
      std::printf("op %5llu: %-6s %s\n", static_cast<unsigned long long>(i),
                  btrim::FaultOpName(trace[i].op), trace[i].target.c_str());
    }
  }

  // Phase 2: pick crash points.
  std::set<uint64_t> points;
  if (opt.crash_op >= 0) {
    points.insert(static_cast<uint64_t>(opt.crash_op));
  } else {
    // Every sync boundary: the durability lines where torn state is most
    // interesting.
    for (uint64_t i = 0; i < trace.size(); ++i) {
      if (trace[i].op == btrim::FaultOp::kSync) points.insert(i);
    }
    // Stride over everything else until the target count is reached, then
    // seeded random extras for the gaps.
    if (total_ops > 0) {
      const uint64_t stride =
          std::max<uint64_t>(1, total_ops / std::max(opt.points, 1));
      for (uint64_t i = 0; i < total_ops &&
                           points.size() < static_cast<size_t>(opt.points);
           i += stride) {
        points.insert(i);
      }
      btrim::Random rng(opt.seed ^ 0xdeadbeefULL);
      while (points.size() < static_cast<size_t>(opt.points) &&
             points.size() < total_ops) {
        points.insert(rng.Uniform(total_ops));
      }
    }
  }

  std::printf("testing %zu crash points\n", points.size());

  std::vector<std::string> failures;
  int64_t acked_total = 0;
  int done = 0;
  for (uint64_t crash_op : points) {
    btrim::testing::TortureStats stats;
    btrim::Status s =
        btrim::testing::RunCrashPoint(config, crash_op, &stats);
    acked_total += stats.txns_acked;
    if (!s.ok()) {
      char line[512];
      std::snprintf(line, sizeof(line), "FAIL seed=%llu crash_op=%llu: %s",
                    static_cast<unsigned long long>(opt.seed),
                    static_cast<unsigned long long>(crash_op),
                    s.ToString().c_str());
      std::printf("%s\n", line);
      failures.emplace_back(line);
    }
    ++done;
    if (done % 50 == 0) {
      std::printf("  ... %d/%zu points, %zu failures\n", done, points.size(),
                  failures.size());
    }
  }

  if (failures.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(opt.dir, ec);
  } else {
    std::printf("keeping data dir for inspection: %s\n", opt.dir.c_str());
  }

  if (!opt.failures_file.empty() && !failures.empty()) {
    std::FILE* f = std::fopen(opt.failures_file.c_str(), "w");
    if (f != nullptr) {
      for (const std::string& line : failures) {
        std::fprintf(f, "%s\n", line.c_str());
      }
      std::fclose(f);
    }
  }

#if defined(BTRIM_LOCK_ORDER_CHECKS)
  // Every lock acquisition across every crash-point run fed the lock-order
  // validator; the acquisition graph must have stayed cycle-free.
  {
    auto* validator = btrim::LockOrderValidator::Global();
    if (validator->ViolationCount() != 0) {
      std::fprintf(stderr, "lock-order violations observed:\n%s\n",
                   validator->Report().c_str());
      failures.emplace_back("lock-order validator reported cycles");
    }
  }
#endif

  std::printf(
      "done: %zu crash points, %lld commits verified across runs, "
      "%zu failures\n",
      points.size(), static_cast<long long>(acked_total), failures.size());
  return failures.empty() ? 0 : 1;
}
