// btrim_server: the networked front-end as a standalone process — binds the
// wire protocol (DESIGN.md Sec. 16) to a fresh in-memory BTrimDB with a
// TPC-C dataset and a kv-shaped table preloaded.
//
//   ./build/tools/btrim_server [options]
//     --host H                listen address            (default 127.0.0.1)
//     --port N                listen port, 0=ephemeral  (default 7421)
//     --lanes N               worker lanes              (default 4)
//     --max-inflight N        admission-control cap     (default 256)
//     --warehouses N          TPC-C scale, 0=no TPC-C   (default 1)
//     --kv-rows N             rows preloaded into `kv`  (default 10000)
//     --kv-value-bytes N      preloaded value size      (default 64)
//     --imrs-mb N             IMRS cache size in MiB    (default 12)
//     --pack-workers N        background pack/GC pool   (default 1)
//     --steady-pct N          steady cache utilization  (default 70)
//     --seed N                load + server seed        (default 7)
//     --sample-interval-ms N  sampler cadence, 0=off    (default 250)
//     --metrics-out FILE      metrics JSON on shutdown
//     --tag NAME              meta.tag in the export    (default "server")
//     --ready-file FILE       write "<port>\n" once listening (CI rendezvous)
//
// Runs until SIGTERM/SIGINT, then: stops the server (draining in-flight
// requests), writes the metrics export (net.* finals survive as retained
// samples), and exits 0. CI's server-e2e job treats any other exit status
// as a failed shutdown.

#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "engine/database.h"
#include "net/server.h"
#include "obs/metrics_io.h"
#include "tpcc/loader.h"

using namespace btrim;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleStop(int) { g_stop = 1; }

struct CliOptions {
  std::string host = "127.0.0.1";
  int port = 7421;
  int lanes = 4;
  int max_inflight = 256;
  int warehouses = 1;
  int64_t kv_rows = 10000;
  int kv_value_bytes = 64;
  int imrs_mb = 12;
  int pack_workers = 1;
  int steady_pct = 70;
  uint64_t seed = 7;
  int sample_interval_ms = 250;
  std::string metrics_out;
  std::string tag = "server";
  std::string ready_file;
};

bool ParseArgs(int argc, char** argv, CliOptions* opts) {
  for (int i = 1; i < argc; ++i) {
    auto int_arg = [&](const char* name, auto* out) {
      if (strcmp(argv[i], name) == 0 && i + 1 < argc) {
        *out = static_cast<std::remove_pointer_t<decltype(out)>>(
            atoll(argv[++i]));
        return true;
      }
      return false;
    };
    auto str_arg = [&](const char* name, std::string* out) {
      if (strcmp(argv[i], name) == 0 && i + 1 < argc) {
        *out = argv[++i];
        return true;
      }
      return false;
    };
    if (int_arg("--port", &opts->port)) continue;
    if (int_arg("--lanes", &opts->lanes)) continue;
    if (int_arg("--max-inflight", &opts->max_inflight)) continue;
    if (int_arg("--warehouses", &opts->warehouses)) continue;
    if (int_arg("--kv-rows", &opts->kv_rows)) continue;
    if (int_arg("--kv-value-bytes", &opts->kv_value_bytes)) continue;
    if (int_arg("--imrs-mb", &opts->imrs_mb)) continue;
    if (int_arg("--pack-workers", &opts->pack_workers)) continue;
    if (int_arg("--steady-pct", &opts->steady_pct)) continue;
    if (int_arg("--seed", &opts->seed)) continue;
    if (int_arg("--sample-interval-ms", &opts->sample_interval_ms)) continue;
    if (str_arg("--host", &opts->host)) continue;
    if (str_arg("--metrics-out", &opts->metrics_out)) continue;
    if (str_arg("--tag", &opts->tag)) continue;
    if (str_arg("--ready-file", &opts->ready_file)) continue;
    fprintf(stderr, "unknown option: %s (see the header of btrim_server.cc)\n",
            argv[i]);
    return false;
  }
  return true;
}

Status LoadKv(Database* db, int64_t rows, int value_bytes) {
  TableOptions o;
  o.name = "kv";
  o.schema = Schema({Column::Int64("k"), Column::String("v", 256)});
  o.primary_key = {0};
  Result<Table*> table = db->CreateTable(std::move(o));
  if (!table.ok()) return table.status();
  const std::string value(static_cast<size_t>(value_bytes), 'v');
  constexpr int64_t kBatch = 256;
  for (int64_t base = 0; base < rows; base += kBatch) {
    std::unique_ptr<Transaction> txn = db->Begin();
    const int64_t end = std::min(rows, base + kBatch);
    for (int64_t k = base; k < end; ++k) {
      RecordBuilder builder(&(*table)->schema());
      builder.AddInt64(k).AddString(value);
      Status s = db->Insert(txn.get(), *table, builder.Finish());
      if (!s.ok()) {
        (void)db->Abort(txn.get());
        return s;
      }
    }
    BTRIM_RETURN_IF_ERROR(db->Commit(txn.get()));
  }
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  if (!ParseArgs(argc, argv, &cli)) return 2;

  DatabaseOptions options;
  options.buffer_cache_frames = 8192;
  options.imrs_cache_bytes = static_cast<size_t>(cli.imrs_mb) << 20;
  options.lock_timeout_ms = 50;
  options.ilm.steady_cache_pct = cli.steady_pct / 100.0;
  options.pack_workers = cli.pack_workers;

  Result<std::unique_ptr<Database>> opened = Database::Open(options);
  if (!opened.ok()) {
    fprintf(stderr, "open: %s\n", opened.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<Database> db = std::move(*opened);

  tpcc::TpccContext ctx;
  const bool with_tpcc = cli.warehouses > 0;
  if (with_tpcc) {
    tpcc::Scale scale;
    scale.warehouses = cli.warehouses;
    Result<tpcc::Tables> tables = tpcc::CreateTables(db.get(), scale);
    if (!tables.ok()) {
      fprintf(stderr, "tables: %s\n", tables.status().ToString().c_str());
      return 1;
    }
    printf("loading TPC-C: %d warehouse(s)...\n", cli.warehouses);
    Status load = tpcc::LoadDatabase(db.get(), *tables, scale, cli.seed);
    if (!load.ok()) {
      fprintf(stderr, "load: %s\n", load.ToString().c_str());
      return 1;
    }
    ctx.db = db.get();
    ctx.tables = *tables;
    ctx.scale = scale;
    ctx.next_history_id = static_cast<int64_t>(scale.warehouses) *
                              scale.districts_per_warehouse *
                              scale.customers_per_district +
                          1;
  }

  if (cli.kv_rows > 0) {
    Status kv = LoadKv(db.get(), cli.kv_rows, cli.kv_value_bytes);
    if (!kv.ok()) {
      fprintf(stderr, "kv load: %s\n", kv.ToString().c_str());
      return 1;
    }
  }

  db->StartBackground();

  net::ServerOptions sopt;
  sopt.host = cli.host;
  sopt.port = cli.port;
  sopt.worker_lanes = cli.lanes;
  sopt.max_inflight = cli.max_inflight;
  sopt.tpcc = with_tpcc ? &ctx : nullptr;
  sopt.seed = cli.seed;
  Result<std::unique_ptr<net::Server>> started =
      net::Server::Start(db.get(), sopt);
  if (!started.ok()) {
    fprintf(stderr, "server: %s\n", started.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<net::Server> server = std::move(*started);

  std::signal(SIGINT, HandleStop);
  std::signal(SIGTERM, HandleStop);

  printf("listening on %s:%d (lanes=%d, max-inflight=%d, tpcc=%s)\n",
         cli.host.c_str(), server->port(), cli.lanes, cli.max_inflight,
         with_tpcc ? "on" : "off");
  fflush(stdout);
  if (!cli.ready_file.empty()) {
    Status ready = obs::WriteFileOrError(
        cli.ready_file, std::to_string(server->port()) + "\n");
    if (!ready.ok()) {
      fprintf(stderr, "ready-file: %s\n", ready.ToString().c_str());
      return 1;
    }
  }

  WallTimer since_sample;
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    if (cli.sample_interval_ms > 0 &&
        since_sample.ElapsedMicros() >= cli.sample_interval_ms * 1000) {
      db->metrics_sampler()->SampleNow(/*marker=*/-1);
      since_sample = WallTimer();
    }
  }

  printf("shutting down...\n");
  server->Stop();  // drains in-flight requests, retires net.* metrics
  server.reset();
  db->StopBackground();

  if (!cli.metrics_out.empty()) {
    db->metrics_sampler()->SampleNow(/*marker=*/-1);
    std::vector<obs::MetaEntry> meta = {
        {"bench", "server", false},
        {"tag", cli.tag, false},
        {"warehouses", std::to_string(cli.warehouses), true},
        {"kv_rows", std::to_string(cli.kv_rows), true},
        {"lanes", std::to_string(cli.lanes), true},
        {"max_inflight", std::to_string(cli.max_inflight), true},
        {"seed", std::to_string(cli.seed), true},
    };
    Status s = obs::WriteMetricsFile(cli.metrics_out, meta,
                                     *db->metrics_registry(),
                                     db->metrics_sampler());
    if (!s.ok()) {
      fprintf(stderr, "metrics-out: %s\n", s.ToString().c_str());
      return 1;
    }
    printf("metrics written to %s\n", cli.metrics_out.c_str());
  }
  return 0;
}
