#!/usr/bin/env python3
"""Nightly shape-check gate: asserts the paper's figure *shapes* (not
absolute numbers) from metrics exports produced by `tpcc_cli --metrics-out`
or the bench harness's BTRIM_METRICS_OUT files.

Subcommands:

  fig2 --ilm-on ON.json --ilm-off OFF.json
      Cache-utilization life cycle (paper Fig. 2): with ILM on, IMRS
      footprint plateaus near the steady-state target; with ILM off it
      grows monotonically and ends well above the ILM_ON plateau.

  fig6 --run RUN.json
      Row-reuse ordering (paper Fig. 6): per-row reuse rate is ordered
      warehouse > district > order_line, and the insert-only history
      table sees (almost) no reuse.

  fig9 PCT=FILE [PCT=FILE ...]
      Steady-threshold sweep (paper Fig. 9): the steady-state IMRS
      high-water mark is monotone non-decreasing in the steady-cache
      threshold.

  htap --run RUN.json
      HTAP interference (micro_htap --metrics-out): per-window OLTP
      throughput with concurrent analytical scans stays within a bounded
      dip of the oltp-alone phase on the same run.

  scenarios --scenario NAME --run RUN.json
      Server scenario-fleet shapes (btrim_server --metrics-out after a
      btrim_client --mode scenario run). Common gates for every scenario:
      enough sampler windows, traffic flowed, the request queue drained,
      and zero protocol errors / sheds (scenario clients are synchronous,
      so shedding means the admission gate misfired). Per-scenario:
        ycsb      read+write+scan mix actually exercised
        hotkey    IMRS footprint plateaus under the hot-key storm
        skewshift packing resumes within --recovery-windows of the
                  client's mid-run Mark (ILM re-learns the shifted skew)
        burst     the queue is drained at every burst-boundary Mark

All checks read the unified export schema:
  {"meta": {...}, "metrics": [...], "series": [{"marker":.., "metrics":[..]}]}

Exit 0 when every shape holds; exit 1 with one line per violation.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def series_of(doc, name):
    """[(marker, value)] across sampler windows for a global metric."""
    out = []
    for window in doc["series"]:
        for m in window["metrics"]:
            if m["name"] == name:
                out.append((window["marker"], m["value"]))
                break
    return out


def table_sum(doc, name, table):
    """Sum of a partition.* metric across all partitions of `table`."""
    return sum(m["value"] for m in doc["metrics"]
               if m["name"] == name and m["labels"].get("table") == table)


def mean(xs):
    return sum(xs) / len(xs) if xs else 0.0


def check_fig2(args, errors):
    on = load(args.ilm_on)
    off = load(args.ilm_off)
    on_vals = [v for _, v in series_of(on, "imrs_cache.in_use_bytes")]
    off_vals = [v for _, v in series_of(off, "imrs_cache.in_use_bytes")]
    if len(on_vals) < 6 or len(off_vals) < 6:
        errors.append("fig2: need >= 6 sampler windows per run "
                      f"(got {len(on_vals)} / {len(off_vals)})")
        return

    third = len(off_vals) // 3
    off_early, off_mid, off_late = (mean(off_vals[:third]),
                                    mean(off_vals[third:2 * third]),
                                    mean(off_vals[2 * third:]))
    if not off_early < off_mid < off_late:
        errors.append(
            "fig2: ILM_OFF footprint is not monotonically growing "
            f"(thirds: {off_early:.0f}, {off_mid:.0f}, {off_late:.0f})")

    third = len(on_vals) // 3
    on_mid, on_late = (mean(on_vals[third:2 * third]),
                       mean(on_vals[2 * third:]))
    if on_mid > 0 and on_late > on_mid * 1.35:
        errors.append(
            "fig2: ILM_ON footprint did not plateau "
            f"(mid {on_mid:.0f} -> late {on_late:.0f}, > +35%)")
    if off_vals[-1] < on_vals[-1] * 1.5:
        errors.append(
            "fig2: ILM_OFF final footprint should dwarf ILM_ON "
            f"({off_vals[-1]} < 1.5 * {on_vals[-1]})")
    print(f"fig2: ILM_ON plateau ~{on_late / 1024:.0f} KiB, "
          f"ILM_OFF grew to {off_vals[-1] / 1024:.0f} KiB")


def reuse_rate(doc, table):
    reuse = sum(table_sum(doc, f"partition.reuse_{op}", table)
                for op in ("select", "update", "delete"))
    new_rows = sum(table_sum(doc, f"partition.{src}", table)
                   for src in ("inserts_imrs", "migrations", "cachings"))
    return reuse, reuse / max(new_rows, 1)


def check_fig6(args, errors):
    doc = load(args.run)
    rates = {}
    for table in ("warehouse", "district", "order_line", "history"):
        rates[table] = reuse_rate(doc, table)
    order = ["warehouse", "district", "order_line"]
    for hot, cold in zip(order, order[1:]):
        if rates[hot][1] <= rates[cold][1]:
            errors.append(
                f"fig6: reuse rate ordering violated: {hot} "
                f"({rates[hot][1]:.2f}) <= {cold} ({rates[cold][1]:.2f})")
    # History is insert-only: essentially zero reuse per row.
    if rates["history"][1] > 0.01:
        errors.append(
            f"fig6: history should see ~no reuse, rate "
            f"{rates['history'][1]:.3f}")
    summary = ", ".join(f"{t}={rates[t][1]:.2f}" for t in rates)
    print(f"fig6: reuse/row {summary}")


# OLTP-throughput floor under concurrent analytical scans, as a fraction
# of the oltp-alone phase's throughput. Mirrors the dip constants in
# bench/micro_htap.cc / tools/check_regression.py check_htap, applied here
# per sampler window rather than to whole-phase totals.
HTAP_DIP_FLOOR = 0.3      # hw_threads >= 4
HTAP_DIP_FLOOR_1T = 0.2   # hw_threads < 4


def phase_rates(doc, first_seq, last_seq):
    """Committed-txns/s between consecutive sampler windows of one phase.

    micro_htap samples at committed-transaction windows with the committed
    count as the marker, so the rate axis is marker delta over wall delta.
    """
    windows = [w for w in doc["series"]
               if first_seq <= w["seq"] < last_seq and w["marker"] >= 0]
    rates = []
    for a, b in zip(windows, windows[1:]):
        dt_us = b["wall_us"] - a["wall_us"]
        dm = b["marker"] - a["marker"]
        if dt_us > 0 and dm > 0:
            rates.append(dm / (dt_us / 1e6))
    return rates


def check_htap(args, errors):
    doc = load(args.run)
    meta = doc.get("meta", {})
    alone_seq = meta.get("htap_oltp_alone_first_seq")
    mixed_seq = meta.get("htap_mixed_first_seq")
    if alone_seq is None or mixed_seq is None:
        errors.append("htap: meta.htap_*_first_seq missing — produce the "
                      "export with micro_htap --metrics-out")
        return
    alone = phase_rates(doc, alone_seq, mixed_seq)
    mixed = phase_rates(doc, mixed_seq, 1 << 62)
    if len(alone) < 2 or len(mixed) < 2:
        errors.append("htap: need >= 2 rate windows per phase "
                      f"(got {len(alone)} alone / {len(mixed)} mixed)")
        return
    hw = int(meta.get("hw_threads", 1))
    floor = HTAP_DIP_FLOOR if hw >= 4 else HTAP_DIP_FLOOR_1T
    alone_rate, mixed_rate = mean(alone), mean(mixed)
    if alone_rate <= 0:
        errors.append("htap: oltp-alone phase shows no throughput")
        return
    dip = mixed_rate / alone_rate
    if dip < floor:
        errors.append(
            f"htap: OLTP under concurrent scans kept only {dip:.0%} of "
            f"alone throughput ({alone_rate:.0f} -> {mixed_rate:.0f} txn/s, "
            f"floor {floor:.0%} on {hw} hw threads)")
    print(f"htap: oltp alone {alone_rate:.0f} txn/s, with scans "
          f"{mixed_rate:.0f} txn/s ({dip:.0%}, floor {floor:.0%})")


def steady_hwm(doc):
    vals = [v for _, v in series_of(doc, "imrs_cache.in_use_bytes")]
    if not vals:
        return None
    # Steady state: ignore warm-up, take the high-water mark of the
    # second half of the run.
    return max(vals[len(vals) // 2:])


def check_fig9(args, errors):
    points = []
    for spec in args.runs:
        pct, _, path = spec.partition("=")
        if not path:
            errors.append(f"fig9: bad spec '{spec}', want PCT=FILE")
            return
        hwm = steady_hwm(load(path))
        if hwm is None:
            errors.append(f"fig9: {path} has no sampler series")
            return
        points.append((float(pct), hwm))
    if len(points) < 2:
        errors.append("fig9: need >= 2 threshold points")
        return
    points.sort()
    for (lo_pct, lo_hwm), (hi_pct, hi_hwm) in zip(points, points[1:]):
        # Monotone non-decreasing with 5% slack for run-to-run noise.
        if hi_hwm < lo_hwm * 0.95:
            errors.append(
                f"fig9: steady HWM not monotone in threshold: "
                f"{lo_pct:.0f}% -> {lo_hwm}, {hi_pct:.0f}% -> {hi_hwm}")
    print("fig9: steady HWM by threshold: " +
          ", ".join(f"{p:.0f}%={h // 1024} KiB" for p, h in points))


def final_value(doc, name):
    """Final snapshot value of a global metric (live or retained)."""
    for m in doc["metrics"]:
        if m["name"] == name and "value" in m:
            return m["value"]
    return None


# Queue depth observed inside a Mark's own SampleNow includes the Mark
# request itself (it is still in flight), so "drained" is <= this bound,
# not == 0. Synchronous scenario clients keep at most one request per
# thread in flight on top of that.
SCENARIO_MARK_DEPTH_CEILING = 4


def check_scenarios(args, errors):
    doc = load(args.run)
    scen = args.scenario

    windows = doc["series"]
    if len(windows) < 6:
        errors.append(f"scenarios/{scen}: need >= 6 sampler windows "
                      f"(got {len(windows)}) — run the scenario longer or "
                      "sample faster")
        return
    requests = [v for _, v in series_of(doc, "net.requests")]
    if not requests or requests[-1] <= requests[0]:
        errors.append(f"scenarios/{scen}: no request traffic across the "
                      "sampler series")

    for name, want in (("net.queue_depth", 0), ("net.protocol_errors", 0),
                       ("net.shed", 0)):
        got = final_value(doc, name)
        if got is None:
            errors.append(f"scenarios/{scen}: final {name} missing from "
                          "the export")
        elif got != want:
            errors.append(f"scenarios/{scen}: final {name} = {got}, "
                          f"want {want}")

    if scen == "ycsb":
        for name in ("net.req_get", "net.req_put", "net.req_scan"):
            if not final_value(doc, name):
                errors.append(f"scenarios/ycsb: {name} is zero — the mix "
                              "did not exercise this op")

    elif scen == "hotkey":
        vals = [v for _, v in series_of(doc, "imrs_cache.in_use_bytes")]
        third = len(vals) // 3
        mid, late = mean(vals[third:2 * third]), mean(vals[2 * third:])
        if mid > 0 and late > mid * 1.35:
            errors.append(
                "scenarios/hotkey: IMRS footprint did not plateau under "
                f"the hot-key storm (mid {mid:.0f} -> late {late:.0f}, "
                "> +35%)")

    elif scen == "skewshift":
        shift = next((i for i, w in enumerate(windows) if w["marker"] >= 1),
                     None)
        if shift is None:
            errors.append("scenarios/skewshift: no marker window — the "
                          "client's mid-run Mark never landed")
            return
        if len(windows) - shift - 1 < 2:
            errors.append("scenarios/skewshift: < 2 post-shift windows — "
                          "run the post-shift half longer")
            return
        packed = [v for _, v in series_of(doc, "pack.bytes_packed")]
        if len(packed) != len(windows):
            errors.append("scenarios/skewshift: pack.bytes_packed missing "
                          "from some windows")
            return
        if packed[shift] <= 0:
            errors.append(
                "scenarios/skewshift: no pack activity before the shift — "
                "size the server's IMRS cache below the working set "
                "(e.g. btrim_server --imrs-mb 5 for 20k x 64B rows)")
            return
        k = args.recovery_windows
        recovery = packed[shift + 1:shift + 1 + k]
        if not any(v > packed[shift] for v in recovery):
            errors.append(
                f"scenarios/skewshift: packing did not resume within {k} "
                f"windows of the skew shift (stuck at {packed[shift]} "
                "bytes) — ILM failed to re-learn the shifted skew")
        else:
            print(f"scenarios/skewshift: pack bytes {packed[shift]} at "
                  f"shift -> {packed[-1]} final "
                  f"({len(windows) - shift - 1} post-shift windows)")

    elif scen == "burst":
        marks = [(w["marker"], w) for w in windows if w["marker"] >= 1]
        if len(marks) < 4:
            errors.append(f"scenarios/burst: only {len(marks)} burst-"
                          "boundary marker windows (want >= 4)")
        for marker, w in marks:
            depth = next((m["value"] for m in w["metrics"]
                          if m["name"] == "net.queue_depth"), None)
            if depth is None or depth > SCENARIO_MARK_DEPTH_CEILING:
                errors.append(
                    f"scenarios/burst: queue not drained at burst {marker} "
                    f"(depth {depth}, ceiling "
                    f"{SCENARIO_MARK_DEPTH_CEILING})")

    else:
        errors.append(f"scenarios: unknown scenario '{scen}'")
        return
    if not errors:
        print(f"scenarios/{scen}: {len(windows)} windows, "
              f"{requests[-1]} requests, queue drained")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="figure", required=True)

    p2 = sub.add_parser("fig2", help="ILM_ON plateau vs ILM_OFF growth")
    p2.add_argument("--ilm-on", required=True)
    p2.add_argument("--ilm-off", required=True)

    p6 = sub.add_parser("fig6", help="per-table reuse ordering")
    p6.add_argument("--run", required=True, help="an ILM_ON metrics export")

    p9 = sub.add_parser("fig9", help="steady HWM monotone in threshold")
    p9.add_argument("runs", nargs="+", metavar="PCT=FILE")

    ph = sub.add_parser("htap",
                        help="OLTP throughput dip under concurrent scans")
    ph.add_argument("--run", required=True,
                    help="a micro_htap --metrics-out export")

    ps = sub.add_parser("scenarios",
                        help="server scenario-fleet sampler shapes")
    ps.add_argument("--scenario", required=True,
                    choices=["ycsb", "hotkey", "skewshift", "burst"])
    ps.add_argument("--run", required=True,
                    help="a btrim_server --metrics-out export")
    ps.add_argument("--recovery-windows", type=int, default=4,
                    help="windows allowed for post-shift pack recovery")

    args = parser.parse_args()
    errors = []
    {"fig2": check_fig2, "fig6": check_fig6, "fig9": check_fig9,
     "htap": check_htap, "scenarios": check_scenarios}[args.figure](args,
                                                                    errors)
    if errors:
        for e in errors:
            print(f"SHAPE FAIL: {e}", file=sys.stderr)
        return 1
    print(f"{args.figure}: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
