// btrim_client: workload driver for btrim_server over the wire protocol.
// Two modes:
//
//   --mode tpcc       N threads issuing kTpcc ops (standard mix, server-side
//                     warehouse pick). Counts *acked* commits — replies the
//                     server answered committed=true — which CI's server-e2e
//                     job cross-checks against the server's own
//                     net.tpcc_committed metric.
//   --mode scenario   YCSB-style fleet against the preloaded `kv` table:
//       --scenario ycsb       uniform keys, read/scan/write mix
//       --scenario hotkey     90% of ops on the hottest 1% of the keyspace
//       --scenario skewshift  first half on the low half of the keyspace,
//                             then a sampler mark, then the high half —
//                             stresses ILM timestamp-filter re-learning
//       --scenario burst      bursts of load with idle gaps (drain check)
//
//   ./build/tools/btrim_client [options]
//     --host H          server address       (default 127.0.0.1)
//     --port N          server port          (default 7421)
//     --mode M          tpcc | scenario      (default tpcc)
//     --scenario S      see above            (default ycsb)
//     --threads N       client connections   (default 4)
//     --ops N           total operations     (default 20000)
//     --txns N          alias for --ops
//     --keys N          kv keyspace size     (default 10000)
//     --read-pct N      % of kv ops as Get   (default 80)
//     --scan-pct N      % of kv ops as Scan  (default 5)
//     --scan-limit N    rows per Scan        (default 20)
//     --value-bytes N   Put payload size     (default 64)
//     --table T         kv table name        (default kv)
//     --tenant T        handshake tenant     (default "")
//     --seed N                               (default 11)
//     --json-out FILE   also write the summary JSON to FILE
//
// Prints one summary JSON line; exits nonzero on any transport failure,
// any unexpected error reply, or (tpcc mode) zero acked commits.

#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "net/client.h"
#include "obs/metrics_io.h"

using namespace btrim;
using btrim::net::Client;
using btrim::net::Response;

namespace {

struct CliOptions {
  std::string host = "127.0.0.1";
  int port = 7421;
  std::string mode = "tpcc";
  std::string scenario = "ycsb";
  int threads = 4;
  int64_t ops = 20000;
  int64_t keys = 10000;
  int read_pct = 80;
  int scan_pct = 5;
  int scan_limit = 20;
  int value_bytes = 64;
  std::string table = "kv";
  std::string tenant;
  uint64_t seed = 11;
  std::string json_out;
};

bool ParseArgs(int argc, char** argv, CliOptions* opts) {
  for (int i = 1; i < argc; ++i) {
    auto int_arg = [&](const char* name, auto* out) {
      if (strcmp(argv[i], name) == 0 && i + 1 < argc) {
        *out = static_cast<std::remove_pointer_t<decltype(out)>>(
            atoll(argv[++i]));
        return true;
      }
      return false;
    };
    auto str_arg = [&](const char* name, std::string* out) {
      if (strcmp(argv[i], name) == 0 && i + 1 < argc) {
        *out = argv[++i];
        return true;
      }
      return false;
    };
    if (int_arg("--port", &opts->port)) continue;
    if (int_arg("--threads", &opts->threads)) continue;
    if (int_arg("--ops", &opts->ops)) continue;
    if (int_arg("--txns", &opts->ops)) continue;  // alias
    if (int_arg("--keys", &opts->keys)) continue;
    if (int_arg("--read-pct", &opts->read_pct)) continue;
    if (int_arg("--scan-pct", &opts->scan_pct)) continue;
    if (int_arg("--scan-limit", &opts->scan_limit)) continue;
    if (int_arg("--value-bytes", &opts->value_bytes)) continue;
    if (int_arg("--seed", &opts->seed)) continue;
    if (str_arg("--host", &opts->host)) continue;
    if (str_arg("--mode", &opts->mode)) continue;
    if (str_arg("--scenario", &opts->scenario)) continue;
    if (str_arg("--table", &opts->table)) continue;
    if (str_arg("--tenant", &opts->tenant)) continue;
    if (str_arg("--json-out", &opts->json_out)) continue;
    fprintf(stderr, "unknown option: %s (see the header of btrim_client.cc)\n",
            argv[i]);
    return false;
  }
  return true;
}

struct WorkerStats {
  int64_t ops = 0;
  int64_t ok = 0;
  int64_t busy = 0;        ///< kBusy replies: shed by admission control
  int64_t not_found = 0;   ///< kNotFound on Get (expected on cold keys)
  int64_t errors = 0;      ///< any other error reply
  int64_t transport = 0;   ///< send/recv failures
  int64_t acked_commits = 0;
  int64_t user_aborts = 0;
  int64_t sys_aborts = 0;
  int64_t rows_scanned = 0;
  std::string first_error;

  void Merge(const WorkerStats& o) {
    ops += o.ops;
    ok += o.ok;
    busy += o.busy;
    not_found += o.not_found;
    errors += o.errors;
    transport += o.transport;
    acked_commits += o.acked_commits;
    user_aborts += o.user_aborts;
    sys_aborts += o.sys_aborts;
    rows_scanned += o.rows_scanned;
    if (first_error.empty()) first_error = o.first_error;
  }

  void Error(const std::string& what) {
    ++errors;
    if (first_error.empty()) first_error = what;
  }
};

/// Standard TPC-C mix: 45/43/4/4/4 across NewOrder..StockLevel.
uint8_t PickTpccType(std::mt19937_64* rnd) {
  const int roll = static_cast<int>((*rnd)() % 100);
  if (roll < 45) return 0;
  if (roll < 88) return 1;
  if (roll < 92) return 2;
  if (roll < 96) return 3;
  return 4;
}

void RunTpccWorker(Client* client, int64_t ops, uint64_t seed,
                   WorkerStats* st) {
  std::mt19937_64 rnd(seed);
  for (int64_t i = 0; i < ops; ++i) {
    Result<Response> resp = client->Tpcc(PickTpccType(&rnd), /*warehouse=*/0);
    ++st->ops;
    if (!resp.ok()) {
      ++st->transport;
      if (st->first_error.empty()) st->first_error = resp.status().ToString();
      return;  // the connection is gone; keep the partial counts
    }
    if (resp->code == Status::Code::kBusy) {
      ++st->busy;
      continue;
    }
    if (!resp->ok()) {
      st->Error(std::string(resp->message));
      continue;
    }
    ++st->ok;
    if (resp->committed) {
      ++st->acked_commits;
    } else if (resp->user_abort) {
      ++st->user_aborts;
    } else {
      ++st->sys_aborts;
    }
  }
}

/// One slice of kv ops against keys in [key_lo, key_hi). `hot` focuses 90%
/// of ops on the lowest 1% of the range (hot-key storm).
void RunKvWorker(Client* client, const CliOptions& cli, int64_t ops,
                 int64_t key_lo, int64_t key_hi, bool hot, uint64_t seed,
                 WorkerStats* st) {
  std::mt19937_64 rnd(seed);
  const int64_t span = key_hi > key_lo ? key_hi - key_lo : 1;
  const int64_t hot_span = std::max<int64_t>(span / 100, 1);
  const std::string value(static_cast<size_t>(cli.value_bytes), 'w');
  for (int64_t i = 0; i < ops; ++i) {
    int64_t key = key_lo + static_cast<int64_t>(rnd() % span);
    if (hot && rnd() % 10 != 0) key = key_lo + static_cast<int64_t>(
                                          rnd() % hot_span);
    const int roll = static_cast<int>(rnd() % 100);
    Result<Response> resp =
        roll < cli.read_pct
            ? client->Get(cli.table, key)
            : roll < cli.read_pct + cli.scan_pct
                  ? client->Scan(cli.table, key,
                                 static_cast<uint32_t>(cli.scan_limit))
                  : client->Put(cli.table, key, value);
    ++st->ops;
    if (!resp.ok()) {
      ++st->transport;
      if (st->first_error.empty()) st->first_error = resp.status().ToString();
      return;
    }
    if (resp->ok()) {
      ++st->ok;
      st->rows_scanned += static_cast<int64_t>(resp->rows.size());
    } else if (resp->code == Status::Code::kBusy) {
      ++st->busy;
    } else if (resp->code == Status::Code::kNotFound) {
      ++st->not_found;
    } else {
      st->Error(std::string(resp->message));
    }
  }
}

/// Runs one kv phase across all clients (one thread per client).
void RunKvPhase(std::vector<std::unique_ptr<Client>>* clients,
                const CliOptions& cli, int64_t total_ops, int64_t key_lo,
                int64_t key_hi, bool hot, uint64_t phase_seed,
                std::vector<WorkerStats>* stats) {
  const int threads = static_cast<int>(clients->size());
  const int64_t per = total_ops / threads;
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    const int64_t ops = t == threads - 1 ? total_ops - per * (threads - 1)
                                         : per;
    pool.emplace_back([&, t, ops] {
      RunKvWorker((*clients)[t].get(), cli, ops, key_lo, key_hi, hot,
                  phase_seed * 1000003u + t, &(*stats)[t]);
    });
  }
  for (std::thread& th : pool) th.join();
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  if (!ParseArgs(argc, argv, &cli)) return 2;
  if (cli.threads < 1) cli.threads = 1;

  std::vector<std::unique_ptr<Client>> clients;
  for (int t = 0; t < cli.threads; ++t) {
    Result<std::unique_ptr<Client>> c =
        Client::Connect(cli.host, cli.port, cli.tenant);
    if (!c.ok()) {
      fprintf(stderr, "connect: %s\n", c.status().ToString().c_str());
      return 1;
    }
    clients.push_back(std::move(*c));
  }

  std::vector<WorkerStats> stats(cli.threads);
  WallTimer timer;

  if (cli.mode == "tpcc") {
    const int64_t per = cli.ops / cli.threads;
    std::vector<std::thread> pool;
    for (int t = 0; t < cli.threads; ++t) {
      const int64_t ops =
          t == cli.threads - 1 ? cli.ops - per * (cli.threads - 1) : per;
      pool.emplace_back([&, t, ops] {
        RunTpccWorker(clients[t].get(), ops, cli.seed * 7919u + t, &stats[t]);
      });
    }
    for (std::thread& th : pool) th.join();
  } else if (cli.mode == "scenario") {
    if (cli.scenario == "ycsb") {
      RunKvPhase(&clients, cli, cli.ops, 0, cli.keys, /*hot=*/false, cli.seed,
                 &stats);
    } else if (cli.scenario == "hotkey") {
      RunKvPhase(&clients, cli, cli.ops, 0, cli.keys, /*hot=*/true, cli.seed,
                 &stats);
    } else if (cli.scenario == "skewshift") {
      // Low half, mark the shift in the sampler series, then high half:
      // the server-side ILM filters must re-learn the hot range.
      const int64_t half = cli.keys / 2;
      RunKvPhase(&clients, cli, cli.ops / 2, 0, half, /*hot=*/false, cli.seed,
                 &stats);
      Result<Response> mark = clients[0]->Mark(1);
      if (!mark.ok() || !(*mark).ok()) {
        fprintf(stderr, "mark failed\n");
        return 1;
      }
      RunKvPhase(&clients, cli, cli.ops - cli.ops / 2, half, cli.keys,
                 /*hot=*/false, cli.seed + 1, &stats);
    } else if (cli.scenario == "burst") {
      constexpr int kCycles = 8;
      for (int c = 0; c < kCycles; ++c) {
        RunKvPhase(&clients, cli, cli.ops / kCycles, 0, cli.keys,
                   /*hot=*/false, cli.seed + c, &stats);
        Result<Response> mark = clients[0]->Mark(c + 1);
        if (!mark.ok() || !(*mark).ok()) {
          fprintf(stderr, "mark failed\n");
          return 1;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(150));
      }
    } else {
      fprintf(stderr, "unknown scenario: %s\n", cli.scenario.c_str());
      return 2;
    }
  } else {
    fprintf(stderr, "unknown mode: %s\n", cli.mode.c_str());
    return 2;
  }

  const double elapsed = timer.ElapsedSeconds();
  WorkerStats total;
  for (const WorkerStats& st : stats) total.Merge(st);
  const double tps =
      elapsed > 0 ? static_cast<double>(total.ops) / elapsed : 0.0;

  char json[1024];
  snprintf(json, sizeof(json),
           "{\"mode\": \"%s\", \"scenario\": \"%s\", \"threads\": %d, "
           "\"ops\": %lld, \"ok\": %lld, \"busy\": %lld, "
           "\"not_found\": %lld, \"errors\": %lld, \"transport_errors\": "
           "%lld, \"acked_commits\": %lld, \"user_aborts\": %lld, "
           "\"sys_aborts\": %lld, \"rows_scanned\": %lld, "
           "\"elapsed_s\": %.3f, \"tps\": %.1f}",
           cli.mode.c_str(),
           cli.mode == "scenario" ? cli.scenario.c_str() : "-", cli.threads,
           static_cast<long long>(total.ops),
           static_cast<long long>(total.ok),
           static_cast<long long>(total.busy),
           static_cast<long long>(total.not_found),
           static_cast<long long>(total.errors),
           static_cast<long long>(total.transport),
           static_cast<long long>(total.acked_commits),
           static_cast<long long>(total.user_aborts),
           static_cast<long long>(total.sys_aborts),
           static_cast<long long>(total.rows_scanned), elapsed, tps);
  printf("%s\n", json);
  if (!cli.json_out.empty()) {
    Status s = obs::WriteFileOrError(cli.json_out, std::string(json) + "\n");
    if (!s.ok()) {
      fprintf(stderr, "json-out: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  if (!total.first_error.empty()) {
    fprintf(stderr, "first error: %s\n", total.first_error.c_str());
  }
  if (total.transport > 0 || total.errors > 0) return 1;
  if (cli.mode == "tpcc" && total.acked_commits == 0) {
    fprintf(stderr, "no acked commits\n");
    return 1;
  }
  return 0;
}
