#!/usr/bin/env bash
# BTrimDB lint gate: clang-tidy (when available) + the project-specific
# lint in tools/btrim_lint.py. CI and developers run the same entry point:
#
#   tools/lint.sh [build-dir]
#
# The build dir must contain compile_commands.json (every CMake preset
# exports it). On toolchains without clang-tidy the tidy stage is skipped
# with a warning — the custom lint and the compiler's own -Wall -Wextra
# -Wthread-safety (clang) / [[nodiscard]] enforcement still gate.
set -u -o pipefail

REPO="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-"$REPO/build"}"
status=0

# --- stage 1: clang-tidy ----------------------------------------------------
if command -v clang-tidy >/dev/null 2>&1; then
  if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
    echo "lint.sh: $BUILD_DIR/compile_commands.json not found;" \
         "configure first: cmake --preset default" >&2
    exit 2
  fi
  echo "lint.sh: running clang-tidy (config: .clang-tidy)"
  # shellcheck disable=SC2046
  if ! clang-tidy -p "$BUILD_DIR" --quiet \
        $(find "$REPO/src" -name '*.cc' | sort); then
    status=1
  fi
else
  echo "lint.sh: clang-tidy not found; skipping the tidy stage" >&2
fi

# --- stage 2: project-specific rules ----------------------------------------
echo "lint.sh: running tools/btrim_lint.py"
if ! python3 "$REPO/tools/btrim_lint.py"; then
  status=1
fi

if [[ $status -ne 0 ]]; then
  echo "lint.sh: FAILED" >&2
else
  echo "lint.sh: OK"
fi
exit $status
