#!/usr/bin/env python3
"""BTrimDB custom lint: project-specific rules clang-tidy cannot express.

Rules (each scans src/ only; tests and benches may take shortcuts):

  raw-new-delete     Raw `new` / `delete` outside the allowlist. Owning
                     allocations must go through std::make_unique or the
                     fragment allocator; the allowlist covers the two
                     legitimate patterns (private-constructor factories that
                     wrap the result in a unique_ptr on the same line, and
                     the fragment allocator's internal block management).

  lock-guard-spinlock  `std::lock_guard<SpinLock>` instead of SpinLockGuard.
                     std::lock_guard is invisible to clang's thread-safety
                     analysis; SpinLockGuard (common/spinlock.h) carries the
                     capability annotations.

  nodiscard-status   The Status / Result class definitions must keep their
                     class-level [[nodiscard]] attribute — that is what turns
                     every ignored Status-returning call into a compiler
                     warning, in every translation unit, with no lint run.

  unannotated-lock-member  A SpinLock / RwSpinLock / Mutex member whose name
                     never appears inside a BTRIM_* thread-safety annotation
                     in the same file. Every lock must either guard something
                     (BTRIM_GUARDED_BY / BTRIM_REQUIRES / ...) or be declared
                     a serialization-only lock in the allowlist below.

  direct-lock-call   Direct .lock()/.unlock()/.lock_shared()/... calls on a
                     lock object instead of going through a scoped guard.
                     Guards keep acquire/release balanced on every path and
                     are what the thread-safety analysis and the lock-order
                     validator see. Allowlisted files implement the guards
                     themselves or transfer latch ownership (buffer cache).

  raw-std-sync       Raw std::mutex / std::condition_variable members or
                     std::lock_guard<std::mutex> / std::unique_lock guards
                     outside common/mutex.h. All mutexes in src/ must be the
                     annotated btrim::Mutex so thread-safety analysis and the
                     lock-order validator cover them.

Exit status: 0 when clean, 1 when any finding is reported.
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

# file (relative to repo root) -> substring that must appear on the flagged
# line for the finding to be suppressed.
RAW_NEW_ALLOWLIST = {
    # Private-constructor factories: `new` is wrapped into a unique_ptr in
    # the same expression, so ownership never exists as a raw pointer.
    "src/page/device.cc": "unique_ptr",
    "src/wal/log.cc": "unique_ptr",
    "src/txn/transaction.cc": "unique_ptr",
    "src/engine/database.cc": "unique_ptr",
    # The fragment allocator IS the owner: raw new[]/delete[] of arena
    # blocks is its job.
    "src/alloc/fragment_allocator.cc": "",
    # The lock-order validator must outlive every static-destruction-order
    # lock use, so its process singletons are intentionally leaked.
    "src/common/lock_order.cc": "leaked singleton",
    # The B+Tree's per-page version cells live in a CAS-published chunk
    # table: losers of the publication race delete their chunk, the owner
    # deletes the winners in its destructor. No unique_ptr fits an atomic
    # publication slot.
    "src/index/btree.cc": "lock-free chunk table",
    # The epoch manager is a leaked process singleton (it must outlive
    # every thread's exit hook) and its per-thread records join a lock-free
    # list forever — freeing one would race MinActive scans.
    "src/index/epoch.cc": "leaked singleton",
}

# Serialization-only locks: nothing is GUARDED_BY them — they exist to make
# one activity mutually exclusive with itself (one drainer per GC shard, one
# ILM tick at a time, ...) or to park condition-variable waiters. Keyed by
# file -> member names exempt from unannotated-lock-member in that file.
SERIALIZATION_ONLY_LOCKS = {
    # checkpoint_mu_ makes checkpoints mutually exclusive with each other;
    # the snapshot/stash state they protect is guarded by ckpt_.stash_mu.
    "src/engine/database.h": {"file_mu_", "ilm_tick_mu_", "gc_pass_mu_",
                              "checkpoint_mu_"},
    "src/ilm/partition_state.h": {"pack_mu"},
    "src/imrs/gc.h": {"drain_mu"},
    "src/txn/transaction.h": {"gate_mu_"},
    # Structure locks guarding page/tree topology rather than any single
    # member (the guarded pages live behind the buffer cache).
    "src/page/buffer_cache.h": {"latch"},
    # The stripe mutex guards LockEntry::holders / upgrading_txn, but those
    # live in a *different* object (entries in the stripe's map), which the
    # thread-safety analysis cannot express; the guard relationship is
    # documented on the members and checked by the lock-order validator.
    "src/txn/lock_manager.h": {"mu"},
}

# Files allowed to call .lock()/.unlock()/... directly: the lock and guard
# implementations themselves, the validator, and the two latch-ownership
# transfer sites (PageGuard hand-off, paranoid try-lock probe).
DIRECT_LOCK_CALL_ALLOWLIST = {
    "src/common/spinlock.h",
    "src/common/mutex.h",
    "src/common/lock_order.cc",
    "src/page/buffer_cache.cc",
    "src/engine/validate.cc",
}

# Files allowed to use raw standard-library synchronization primitives: the
# annotated wrapper itself and the validator (which must sit below every
# instrumented lock and so cannot use one).
RAW_STD_SYNC_ALLOWLIST = {
    "src/common/mutex.h",
    "src/common/lock_order.cc",
}

NEW_RE = re.compile(r"\bnew\b")
# Placement new constructs into already-owned memory (the fragment
# allocator's row/version blocks) — not an allocation. nothrow-new is.
PLACEMENT_NEW_RE = re.compile(r"\bnew\s*\((?!\s*std::nothrow)")
# `delete` as the expression keyword; `= delete` (deleted members) is fine.
DELETE_RE = re.compile(r"(?<![=\w])\s*\bdelete\b(\s*\[\s*\])?\s+[\w(*]")
LOCK_GUARD_RE = re.compile(r"std::lock_guard<\s*(SpinLock|RwSpinLock|Mutex)\s*>")
COMMENT_RE = re.compile(r"^\s*(//|/\*|\*|#)")

# Lock-typed member declaration: `[mutable] SpinLock|RwSpinLock|Mutex name`
# possibly followed by an initializer. Matches declarations only (line starts
# with optional qualifiers then the type), not uses.
LOCK_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:SpinLock|RwSpinLock|Mutex)\s+(\w+)\s*(?:\{|;|=)")
# Any BTRIM_* annotation and its argument list (one level of parens).
ANNOTATION_ARGS_RE = re.compile(r"BTRIM_[A-Z_]+\(([^)]*)\)")
# Direct acquire/release call on a lock object.
DIRECT_LOCK_CALL_RE = re.compile(
    r"\.\s*(?:lock|unlock|try_lock|lock_shared|unlock_shared|"
    r"try_lock_shared)\s*\(")
# Raw standard-library synchronization primitives.
RAW_STD_SYNC_RE = re.compile(
    r"std::lock_guard<\s*std::mutex\s*>|std::unique_lock\b|"
    r"std::(?:mutex|timed_mutex|recursive_mutex|shared_mutex)\s+\w|"
    r"std::condition_variable\w*\s+\w")


def strip_strings(line: str) -> str:
    """Blank out string/char literals so words inside them don't match."""
    return re.sub(r'"(?:[^"\\]|\\.)*"|\'(?:[^\'\\]|\\.)*\'', '""', line)


def strip_trailing_comment(line: str) -> str:
    return line.split("//", 1)[0]


def lint_file(path: Path, findings: list) -> None:
    rel = path.relative_to(REPO).as_posix()
    text = path.read_text(encoding="utf-8", errors="replace")

    # Identifiers appearing inside any BTRIM_* annotation argument list in
    # this file: a lock named there guards something (or is required by a
    # function) and counts as annotated.
    annotated_names = set()
    for m in ANNOTATION_ARGS_RE.finditer(text):
        annotated_names.update(re.findall(r"[A-Za-z_]\w*", m.group(1)))
    serialization_only = SERIALIZATION_ONLY_LOCKS.get(rel, set())

    for lineno, raw_line in enumerate(text.splitlines(), start=1):
        if COMMENT_RE.match(raw_line):
            continue
        line = strip_trailing_comment(strip_strings(raw_line))

        member = LOCK_MEMBER_RE.match(line)
        if member:
            name = member.group(1)
            if name not in annotated_names and name not in serialization_only:
                findings.append(
                    (rel, lineno, "unannotated-lock-member",
                     f"lock member `{name}` is never referenced by a BTRIM_* "
                     "annotation; add BTRIM_GUARDED_BY users or declare it "
                     "serialization-only in tools/btrim_lint.py: "
                     + raw_line.strip()))

        if (DIRECT_LOCK_CALL_RE.search(line)
                and rel not in DIRECT_LOCK_CALL_ALLOWLIST):
            findings.append(
                (rel, lineno, "direct-lock-call",
                 "direct lock()/unlock() call bypasses the scoped guards "
                 "(and the lock-order validator hooks); use "
                 "MutexGuard/SpinLockGuard/RwSpinLock*Guard: "
                 + raw_line.strip()))

        if RAW_STD_SYNC_RE.search(line) and rel not in RAW_STD_SYNC_ALLOWLIST:
            findings.append(
                (rel, lineno, "raw-std-sync",
                 "raw std synchronization primitive outside common/mutex.h; "
                 "use btrim::Mutex / MutexGuard / CondVar so thread-safety "
                 "analysis and the lock-order validator see it: "
                 + raw_line.strip()))

        allocating_new = NEW_RE.search(line) and not PLACEMENT_NEW_RE.search(line)
        if allocating_new or DELETE_RE.search(line):
            allowed = RAW_NEW_ALLOWLIST.get(rel)
            # Match against the raw line so a justification comment
            # (e.g. "// leaked singleton") can satisfy the allowlist.
            if allowed is None or (allowed and allowed not in raw_line):
                findings.append(
                    (rel, lineno, "raw-new-delete",
                     "raw new/delete outside the allowlist; use "
                     "std::make_unique or the fragment allocator: "
                     + raw_line.strip()))

        if LOCK_GUARD_RE.search(line):
            findings.append(
                (rel, lineno, "lock-guard-spinlock",
                 "std::lock_guard over a spinlock defeats thread-safety "
                 "analysis; use SpinLockGuard: " + raw_line.strip()))


def check_nodiscard(findings: list) -> None:
    status_h = SRC / "common" / "status.h"
    text = status_h.read_text(encoding="utf-8")
    for cls in ("class [[nodiscard]] Status", "class [[nodiscard]] Result"):
        if cls not in text:
            findings.append(
            ("src/common/status.h", 1, "nodiscard-status",
             f"expected `{cls}` — the class-level [[nodiscard]] makes "
             "ignoring any Status/Result return a compiler warning"))


def main() -> int:
    findings = []
    for path in sorted(SRC.rglob("*.cc")) + sorted(SRC.rglob("*.h")):
        lint_file(path, findings)
    check_nodiscard(findings)

    for rel, lineno, rule, msg in findings:
        print(f"{rel}:{lineno}: [{rule}] {msg}")
    if findings:
        print(f"btrim_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("btrim_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
