#!/usr/bin/env python3
"""BTrimDB custom lint: project-specific rules clang-tidy cannot express.

Rules (each scans src/ only; tests and benches may take shortcuts):

  raw-new-delete     Raw `new` / `delete` outside the allowlist. Owning
                     allocations must go through std::make_unique or the
                     fragment allocator; the allowlist covers the two
                     legitimate patterns (private-constructor factories that
                     wrap the result in a unique_ptr on the same line, and
                     the fragment allocator's internal block management).

  lock-guard-spinlock  `std::lock_guard<SpinLock>` instead of SpinLockGuard.
                     std::lock_guard is invisible to clang's thread-safety
                     analysis; SpinLockGuard (common/spinlock.h) carries the
                     capability annotations.

  nodiscard-status   The Status / Result class definitions must keep their
                     class-level [[nodiscard]] attribute — that is what turns
                     every ignored Status-returning call into a compiler
                     warning, in every translation unit, with no lint run.

Exit status: 0 when clean, 1 when any finding is reported.
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

# file (relative to repo root) -> substring that must appear on the flagged
# line for the finding to be suppressed.
RAW_NEW_ALLOWLIST = {
    # Private-constructor factories: `new` is wrapped into a unique_ptr in
    # the same expression, so ownership never exists as a raw pointer.
    "src/page/device.cc": "unique_ptr",
    "src/wal/log.cc": "unique_ptr",
    "src/txn/transaction.cc": "unique_ptr",
    "src/engine/database.cc": "unique_ptr",
    # The fragment allocator IS the owner: raw new[]/delete[] of arena
    # blocks is its job.
    "src/alloc/fragment_allocator.cc": "",
}

NEW_RE = re.compile(r"\bnew\b")
# Placement new constructs into already-owned memory (the fragment
# allocator's row/version blocks) — not an allocation. nothrow-new is.
PLACEMENT_NEW_RE = re.compile(r"\bnew\s*\((?!\s*std::nothrow)")
# `delete` as the expression keyword; `= delete` (deleted members) is fine.
DELETE_RE = re.compile(r"(?<![=\w])\s*\bdelete\b(\s*\[\s*\])?\s+[\w(*]")
LOCK_GUARD_RE = re.compile(r"std::lock_guard<\s*(SpinLock|RwSpinLock)\s*>")
COMMENT_RE = re.compile(r"^\s*(//|/\*|\*|#)")


def strip_strings(line: str) -> str:
    """Blank out string/char literals so words inside them don't match."""
    return re.sub(r'"(?:[^"\\]|\\.)*"|\'(?:[^\'\\]|\\.)*\'', '""', line)


def strip_trailing_comment(line: str) -> str:
    return line.split("//", 1)[0]


def lint_file(path: Path, findings: list) -> None:
    rel = path.relative_to(REPO).as_posix()
    text = path.read_text(encoding="utf-8", errors="replace")
    for lineno, raw_line in enumerate(text.splitlines(), start=1):
        if COMMENT_RE.match(raw_line):
            continue
        line = strip_trailing_comment(strip_strings(raw_line))

        allocating_new = NEW_RE.search(line) and not PLACEMENT_NEW_RE.search(line)
        if allocating_new or DELETE_RE.search(line):
            allowed = RAW_NEW_ALLOWLIST.get(rel)
            if allowed is None or (allowed and allowed not in line):
                findings.append(
                    (rel, lineno, "raw-new-delete",
                     "raw new/delete outside the allowlist; use "
                     "std::make_unique or the fragment allocator: "
                     + raw_line.strip()))

        if LOCK_GUARD_RE.search(line):
            findings.append(
                (rel, lineno, "lock-guard-spinlock",
                 "std::lock_guard over a spinlock defeats thread-safety "
                 "analysis; use SpinLockGuard: " + raw_line.strip()))


def check_nodiscard(findings: list) -> None:
    status_h = SRC / "common" / "status.h"
    text = status_h.read_text(encoding="utf-8")
    for cls in ("class [[nodiscard]] Status", "class [[nodiscard]] Result"):
        if cls not in text:
            findings.append(
            ("src/common/status.h", 1, "nodiscard-status",
             f"expected `{cls}` — the class-level [[nodiscard]] makes "
             "ignoring any Status/Result return a compiler warning"))


def main() -> int:
    findings = []
    for path in sorted(SRC.rglob("*.cc")) + sorted(SRC.rglob("*.h")):
        lint_file(path, findings)
    check_nodiscard(findings)

    for rel, lineno, rule, msg in findings:
        print(f"{rel}:{lineno}: [{rule}] {msg}")
    if findings:
        print(f"btrim_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("btrim_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
