// Golden-bytes tests pinning the on-disk WAL record format.
//
// The fixtures below are checked-in hex dumps of serialized records. If one
// of these tests fails, the log format changed: either revert the change or
// — if the change is deliberate — add versioning/migration first, then
// regenerate the fixtures. Logs written by an older build must stay
// replayable, or every crash recovery after an upgrade silently loses the
// tail of the last run.
//
// Framing (log_record.h): [u32 body_len][u32 fnv1a_checksum][body], all
// little-endian. Body layout: type(u8), txn_id(u64), table_id(u32),
// partition_id(u32), rid(u64), cts(u64), source(u8),
// before_len(u32)+bytes, after_len(u32)+bytes.

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "page/page.h"
#include "wal/log_record.h"

namespace btrim {
namespace {

std::string FromHex(const std::string& hex) {
  std::string out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i + 1 < hex.size(); i += 2) {
    out.push_back(static_cast<char>(
        std::stoi(hex.substr(i, 2), nullptr, 16)));
  }
  return out;
}

std::string ToHex(const std::string& bytes) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    out.push_back(kDigits[c >> 4]);
    out.push_back(kDigits[c & 0xf]);
  }
  return out;
}

struct GoldenCase {
  const char* name;
  const char* hex;
  LogRecord rec;
};

LogRecord MakeRecord(LogRecordType type, uint64_t txn_id, uint32_t table_id,
                     uint32_t partition_id, uint64_t rid, uint64_t cts,
                     uint8_t source, std::string before, std::string after) {
  LogRecord rec;
  rec.type = type;
  rec.txn_id = txn_id;
  rec.table_id = table_id;
  rec.partition_id = partition_id;
  rec.rid = rid;
  rec.cts = cts;
  rec.source = source;
  rec.before = std::move(before);
  rec.after = std::move(after);
  return rec;
}

// Generated once from the reference serializer; do not regenerate casually
// (see file comment).
std::vector<GoldenCase> GoldenCases() {
  const uint64_t rid = Rid{2, 10, 5}.Encode();
  return {
      {"kPsInsert",
       "350000000b4e353f010700000000000000030000000100000005000a00000002"
       "00000000000000000000000000000b00000061667465722d696d616765",
       MakeRecord(LogRecordType::kPsInsert, 7, 3, 1, rid, 0, 0, "",
                  "after-image")},
      {"kPsUpdate",
       "41000000afa7a613020700000000000000030000000100000005000a00000002"
       "000000000000000000000c0000006265666f72652d696d6167650b0000006166"
       "7465722d696d616765",
       MakeRecord(LogRecordType::kPsUpdate, 7, 3, 1, rid, 0, 0,
                  "before-image", "after-image")},
      {"kPsCommit",
       "2a000000f5a8e396040700000000000000000000000000000000000000000000"
       "006300000000000000000000000000000000",
       MakeRecord(LogRecordType::kPsCommit, 7, 0, 0, 0, 99, 0, "", "")},
      {"kImrsInsert",
       "32000000634186c6100900000000000000030000000100000005000a00000002"
       "000000000000000000010000000008000000726f772d64617461",
       MakeRecord(LogRecordType::kImrsInsert, 9, 3, 1, rid, 0, 1, "",
                  "row-data")},
      // kImrsCommit's `source` byte doubles as the has-page-store-changes
      // flag for cross-log commit atomicity (recovery.cc); the fixture pins
      // it set.
      {"kImrsCommit",
       "2a0000007dbf1bc1140900000000000000000000000000000000000000000000"
       "006400000000000000010000000000000000",
       MakeRecord(LogRecordType::kImrsCommit, 9, 0, 0, 0, 100, 1, "", "")},
      {"kCheckpoint",
       "2a0000007be89c13060000000000000000000000000000000000000000000000"
       "000000000000000000000000000000000000",
       MakeRecord(LogRecordType::kCheckpoint, 0, 0, 0, 0, 0, 0, "", "")},
  };
}

TEST(WalFormatTest, SerializerMatchesGoldenBytes) {
  for (const GoldenCase& c : GoldenCases()) {
    SCOPED_TRACE(c.name);
    std::string buf;
    AppendLogRecord(&buf, c.rec);
    EXPECT_EQ(ToHex(buf), c.hex);
  }
}

TEST(WalFormatTest, ParserReadsGoldenBytes) {
  for (const GoldenCase& c : GoldenCases()) {
    SCOPED_TRACE(c.name);
    const std::string bytes = FromHex(c.hex);
    Slice input(bytes);
    LogRecord parsed;
    ASSERT_TRUE(ParseLogRecord(&input, &parsed).ok());
    EXPECT_TRUE(input.empty());
    EXPECT_EQ(parsed.type, c.rec.type);
    EXPECT_EQ(parsed.txn_id, c.rec.txn_id);
    EXPECT_EQ(parsed.table_id, c.rec.table_id);
    EXPECT_EQ(parsed.partition_id, c.rec.partition_id);
    EXPECT_EQ(parsed.rid, c.rec.rid);
    EXPECT_EQ(parsed.cts, c.rec.cts);
    EXPECT_EQ(parsed.source, c.rec.source);
    EXPECT_EQ(parsed.before, c.rec.before);
    EXPECT_EQ(parsed.after, c.rec.after);
  }
}

TEST(WalFormatTest, GoldenStreamReplaysInOrder) {
  std::string stream;
  for (const GoldenCase& c : GoldenCases()) {
    stream += FromHex(c.hex);
  }
  Slice input(stream);
  LogRecord rec;
  for (const GoldenCase& c : GoldenCases()) {
    SCOPED_TRACE(c.name);
    ASSERT_TRUE(ParseLogRecord(&input, &rec).ok());
    EXPECT_EQ(rec.type, c.rec.type);
  }
  EXPECT_TRUE(ParseLogRecord(&input, &rec).IsNotFound());
}

// A single flipped bit anywhere in a golden frame must be caught by the
// checksum (or the length prefix) — this is what makes a torn log tail safe
// to truncate at recovery.
TEST(WalFormatTest, AnySingleBitFlipIsDetected) {
  const GoldenCase c = GoldenCases()[1];  // kPsUpdate: has both images
  const std::string bytes = FromHex(c.hex);
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string corrupt = bytes;
    corrupt[i] ^= 0x01;
    Slice input(corrupt);
    LogRecord rec;
    Status s = ParseLogRecord(&input, &rec);
    // Either the parse fails outright, or a length-field flip made the
    // frame claim more bytes than exist — never a silently wrong record.
    if (s.ok()) {
      ADD_FAILURE() << "bit flip at byte " << i << " went undetected";
    }
  }
}

}  // namespace
}  // namespace btrim
