// Whole-system integration tests: sustained mixed workloads against tiny
// IMRS caches (forcing steady/aggressive pack and the bypass backpressure),
// randomized multi-threaded operation streams checked against a reference
// model, and end-to-end ILM behaviour.

#include <map>
#include <mutex>
#include <thread>

#include <gtest/gtest.h>

#include "common/random.h"
#include "engine/database.h"

namespace btrim {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  void Open(size_t imrs_bytes, bool background = false) {
    DatabaseOptions options;
    options.buffer_cache_frames = 1024;
    options.imrs_cache_bytes = imrs_bytes;
    options.lock_timeout_ms = 200;
    options.ilm.pack_cycle_pct = 0.15;
    options.background_interval_us = 200;
    Result<std::unique_ptr<Database>> opened = Database::Open(options);
    ASSERT_TRUE(opened.ok());
    db_ = std::move(*opened);

    TableOptions topt;
    topt.name = "t";
    topt.schema = Schema({
        Column::Int64("id"),
        Column::Int64("version"),
        Column::String("data", 64),
    });
    topt.primary_key = {0};
    Result<Table*> created = db_->CreateTable(topt);
    ASSERT_TRUE(created.ok());
    table_ = *created;
    if (background) db_->StartBackground();
  }

  void TearDown() override {
    if (db_ != nullptr) db_->StopBackground();
  }

  std::string Key(int64_t id) { return table_->pk_encoder().KeyForInts({id}); }

  std::string Record(int64_t id, int64_t version, const std::string& data) {
    RecordBuilder b(&table_->schema());
    b.AddInt64(id).AddInt64(version).AddString(data);
    return b.Finish().ToString();
  }

  std::unique_ptr<Database> db_;
  Table* table_ = nullptr;
};

TEST_F(IntegrationTest, SustainedChurnThroughTinyImrsStaysCorrect) {
  // The IMRS can hold only a small fraction of the data set: the engine
  // must continuously pack, possibly bypass, and never lose a row.
  Open(/*imrs_bytes=*/48 * 1024);
  constexpr int64_t kRows = 1500;
  for (int64_t i = 0; i < kRows; ++i) {
    auto txn = db_->Begin();
    ASSERT_TRUE(
        db_->Insert(txn.get(), table_, Record(i, 0, std::string(40, 'd')))
            .ok())
        << i;
    ASSERT_TRUE(db_->Commit(txn.get()).ok());
    if (i % 50 == 0) {
      db_->RunGcOnce();
      db_->RunIlmTickOnce();
    }
  }
  db_->RunGcOnce();
  db_->RunIlmTickOnce();

  DatabaseStats stats = db_->GetStats();
  EXPECT_GT(stats.pack.rows_packed, 0);
  // Cache utilization stayed bounded.
  EXPECT_LE(stats.imrs_cache.in_use_bytes, stats.imrs_cache.capacity_bytes);

  // Every row is present exactly once.
  auto txn = db_->Begin();
  std::vector<ScanRow> rows;
  ASSERT_TRUE(
      db_->ScanIndex(txn.get(), table_, -1, Slice(), Slice(), 0, &rows).ok());
  EXPECT_EQ(rows.size(), static_cast<size_t>(kRows));
  ASSERT_TRUE(db_->Commit(txn.get()).ok());
}

TEST_F(IntegrationTest, UpdatesDuringPackingNeverLoseData) {
  Open(/*imrs_bytes=*/48 * 1024, /*background=*/true);
  constexpr int64_t kRows = 300;
  for (int64_t i = 0; i < kRows; ++i) {
    auto txn = db_->Begin();
    ASSERT_TRUE(
        db_->Insert(txn.get(), table_, Record(i, 0, std::string(40, 'x')))
            .ok());
    ASSERT_TRUE(db_->Commit(txn.get()).ok());
  }
  // Update every row several times while pack/GC run in the background.
  std::map<int64_t, int64_t> expected_version;
  Random rng(31);
  for (int round = 0; round < 5; ++round) {
    for (int64_t i = 0; i < kRows; ++i) {
      auto txn = db_->Begin();
      Status s = db_->Update(txn.get(), table_, Key(i),
                             [&](std::string* payload) {
                               RecordEditor e(&table_->schema(),
                                              Slice(*payload));
                               e.SetInt64(1, e.GetInt(1) + 1);
                               *payload = e.Encode();
                             });
      if (s.ok()) s = db_->Commit(txn.get());
      else { Status a = db_->Abort(txn.get()); (void)a; }
      if (s.ok()) expected_version[i]++;
    }
  }
  db_->StopBackground();
  // Validate every row's version counter.
  for (int64_t i = 0; i < kRows; ++i) {
    auto txn = db_->Begin();
    std::string row;
    ASSERT_TRUE(db_->SelectByKey(txn.get(), table_, Key(i), &row).ok()) << i;
    RecordView v(&table_->schema(), Slice(row));
    EXPECT_EQ(v.GetInt64(1), expected_version[i]) << "row " << i;
    ASSERT_TRUE(db_->Commit(txn.get()).ok());
  }
}

TEST_F(IntegrationTest, RandomizedOpsMatchReferenceModel) {
  // Single-threaded random CRUD mirrored against std::map, with pack + GC
  // interleaved; catches any residency-transition bug that corrupts data.
  Open(/*imrs_bytes=*/64 * 1024);
  std::map<int64_t, std::string> reference;
  Random rng(12345);
  int64_t next_id = 0;

  for (int op = 0; op < 4000; ++op) {
    const int dice = static_cast<int>(rng.Uniform(100));
    auto txn = db_->Begin();
    Status s;
    if (dice < 40 || reference.empty()) {
      const int64_t id = next_id++;
      const std::string data = "d" + std::to_string(rng.Next() % 100000);
      s = db_->Insert(txn.get(), table_, Record(id, 0, data));
      if (s.ok()) s = db_->Commit(txn.get());
      if (s.ok()) reference[id] = data;
    } else if (dice < 70) {
      auto it = reference.begin();
      std::advance(it, rng.Uniform(reference.size()));
      const std::string data = "u" + std::to_string(rng.Next() % 100000);
      s = db_->Update(txn.get(), table_, Key(it->first),
                      [&](std::string* payload) {
                        RecordEditor e(&table_->schema(), Slice(*payload));
                        e.SetString(2, data);
                        *payload = e.Encode();
                      });
      if (s.ok()) s = db_->Commit(txn.get());
      if (s.ok()) it->second = data;
    } else if (dice < 85) {
      auto it = reference.begin();
      std::advance(it, rng.Uniform(reference.size()));
      s = db_->Delete(txn.get(), table_, Key(it->first));
      if (s.ok()) s = db_->Commit(txn.get());
      if (s.ok()) reference.erase(it);
    } else {
      // Read a random id (present or absent) and check the model.
      const int64_t id = static_cast<int64_t>(rng.Uniform(
          static_cast<uint64_t>(next_id) + 1));
      std::string row;
      s = db_->SelectByKey(txn.get(), table_, Key(id), &row);
      auto it = reference.find(id);
      if (it == reference.end()) {
        EXPECT_TRUE(s.IsNotFound()) << "id " << id;
      } else {
        ASSERT_TRUE(s.ok()) << "id " << id << ": " << s.ToString();
        RecordView v(&table_->schema(), Slice(row));
        EXPECT_EQ(v.GetString(2).ToString(), it->second);
      }
      s = db_->Commit(txn.get());
    }
    if (!s.ok() && txn->state() == TxnState::kActive) {
      Status a = db_->Abort(txn.get());
      (void)a;
    }
    if (op % 100 == 0) {
      db_->RunGcOnce();
      db_->RunIlmTickOnce();
    }
  }

  // Final full sweep.
  auto txn = db_->Begin();
  std::vector<ScanRow> rows;
  ASSERT_TRUE(
      db_->ScanIndex(txn.get(), table_, -1, Slice(), Slice(), 0, &rows).ok());
  ASSERT_TRUE(db_->Commit(txn.get()).ok());
  EXPECT_EQ(rows.size(), reference.size());
  for (const ScanRow& r : rows) {
    RecordView v(&table_->schema(), Slice(r.payload));
    auto it = reference.find(v.GetInt64(0));
    ASSERT_NE(it, reference.end()) << v.GetInt64(0);
    EXPECT_EQ(v.GetString(2).ToString(), it->second);
  }
}

TEST_F(IntegrationTest, MultiThreadedDisjointKeyspaceWithBackground) {
  Open(/*imrs_bytes=*/96 * 1024, /*background=*/true);
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 600;
  std::vector<std::thread> threads;
  std::vector<std::map<int64_t, std::string>> models(kThreads);
  std::atomic<int> hard_failures{0};

  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Random rng(9000 + static_cast<uint64_t>(t));
      std::map<int64_t, std::string>& model = models[static_cast<size_t>(t)];
      const int64_t base = static_cast<int64_t>(t) * 1000000;
      int64_t next = 0;
      for (int op = 0; op < kOpsPerThread; ++op) {
        auto txn = db_->Begin();
        Status s;
        const int dice = static_cast<int>(rng.Uniform(100));
        if (dice < 50 || model.empty()) {
          const int64_t id = base + next++;
          const std::string data = std::to_string(rng.Next());
          s = db_->Insert(txn.get(), table_, Record(id, 0, data));
          if (s.ok()) s = db_->Commit(txn.get());
          if (s.ok()) model[id] = data;
        } else if (dice < 80) {
          auto it = model.begin();
          std::advance(it, rng.Uniform(model.size()));
          const std::string data = std::to_string(rng.Next());
          s = db_->Update(txn.get(), table_, Key(it->first),
                          [&](std::string* payload) {
                            RecordEditor e(&table_->schema(),
                                           Slice(*payload));
                            e.SetString(2, data);
                            *payload = e.Encode();
                          });
          if (s.ok()) s = db_->Commit(txn.get());
          if (s.ok()) it->second = data;
        } else {
          auto it = model.begin();
          std::advance(it, rng.Uniform(model.size()));
          s = db_->Delete(txn.get(), table_, Key(it->first));
          if (s.ok()) s = db_->Commit(txn.get());
          if (s.ok()) model.erase(it);
        }
        if (!s.ok()) {
          if (txn->state() == TxnState::kActive) {
            Status a = db_->Abort(txn.get());
            (void)a;
          }
          // Disjoint keys: only resource-pressure errors are acceptable.
          if (!s.IsAborted() && !s.IsNoSpace() && !s.IsBusy()) {
            hard_failures.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  db_->StopBackground();
  EXPECT_EQ(hard_failures.load(), 0);

  // Every thread's model matches the database.
  for (int t = 0; t < kThreads; ++t) {
    for (const auto& [id, data] : models[static_cast<size_t>(t)]) {
      auto txn = db_->Begin();
      std::string row;
      ASSERT_TRUE(db_->SelectByKey(txn.get(), table_, Key(id), &row).ok())
          << "id " << id;
      RecordView v(&table_->schema(), Slice(row));
      EXPECT_EQ(v.GetString(2).ToString(), data);
      ASSERT_TRUE(db_->Commit(txn.get()).ok());
    }
  }
}

TEST_F(IntegrationTest, BypassBackpressureKeepsSystemAvailable) {
  // IMRS so small that aggressive pack cannot keep up with the insert
  // rate: the bypass must kick in and route new rows to the page store
  // without failing any transaction (paper Sec. VI.A: "without causing any
  // application outage").
  Open(/*imrs_bytes=*/32 * 1024);
  int64_t failures = 0;
  for (int64_t i = 0; i < 800; ++i) {
    auto txn = db_->Begin();
    Status s =
        db_->Insert(txn.get(), table_, Record(i, 0, std::string(48, 'b')));
    if (s.ok()) s = db_->Commit(txn.get());
    else { Status a = db_->Abort(txn.get()); (void)a; }
    if (!s.ok()) ++failures;
    if (i % 25 == 0) {
      db_->RunGcOnce();
      db_->RunIlmTickOnce();
    }
  }
  EXPECT_EQ(failures, 0);
  auto txn = db_->Begin();
  std::vector<ScanRow> rows;
  ASSERT_TRUE(
      db_->ScanIndex(txn.get(), table_, -1, Slice(), Slice(), 0, &rows).ok());
  EXPECT_EQ(rows.size(), 800u);
  ASSERT_TRUE(db_->Commit(txn.get()).ok());
}

TEST_F(IntegrationTest, MoneyConservationUnderPackChurn) {
  // The classic atomicity invariant, run while rows migrate between stores:
  // concurrent transfers between accounts (debit + credit in one
  // transaction, with conflicts and timeout-aborts) must conserve the total
  // balance exactly, even as Pack/GC move the rows around.
  Open(/*imrs_bytes=*/32 * 1024, /*background=*/true);
  constexpr int64_t kAccounts = 300;  // ~40 KiB of rows vs a 32 KiB cache
  constexpr double kInitial = 1000.0;

  for (int64_t i = 0; i < kAccounts; ++i) {
    auto txn = db_->Begin();
    RecordBuilder b(&table_->schema());
    b.AddInt64(i).AddInt64(0).AddString(std::to_string(kInitial));
    ASSERT_TRUE(db_->Insert(txn.get(), table_, b.Finish()).ok());
    ASSERT_TRUE(db_->Commit(txn.get()).ok());
  }

  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::atomic<int64_t> committed{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Random rng(777 + static_cast<uint64_t>(t));
      for (int op = 0; op < 400; ++op) {
        const int64_t from = static_cast<int64_t>(rng.Uniform(kAccounts));
        int64_t to = static_cast<int64_t>(rng.Uniform(kAccounts));
        if (to == from) to = (to + 1) % kAccounts;
        const double amount = 1.0 + static_cast<double>(rng.Uniform(50));

        // Lock in id order to keep deadlocks rare (timeouts still abort
        // some transactions, which is part of what we are testing).
        const int64_t first = std::min(from, to);
        const int64_t second = std::max(from, to);
        const double delta_first = first == from ? -amount : amount;

        auto txn = db_->Begin();
        auto apply = [&](int64_t id, double delta) {
          return db_->Update(txn.get(), table_, Key(id),
                             [&](std::string* payload) {
                               RecordEditor e(&table_->schema(),
                                              Slice(*payload));
                               const double bal = std::stod(e.GetString(2));
                               e.SetString(2, std::to_string(bal + delta));
                               *payload = e.Encode();
                             });
        };
        Status s = apply(first, delta_first);
        if (s.ok()) s = apply(second, -delta_first);
        if (s.ok()) s = db_->Commit(txn.get());
        else { Status a = db_->Abort(txn.get()); (void)a; }
        if (s.ok()) committed.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  db_->StopBackground();
  ASSERT_GT(committed.load(), 0);

  double total = 0.0;
  for (int64_t i = 0; i < kAccounts; ++i) {
    auto txn = db_->Begin();
    std::string row;
    ASSERT_TRUE(db_->SelectByKey(txn.get(), table_, Key(i), &row).ok()) << i;
    RecordView v(&table_->schema(), Slice(row));
    total += std::stod(v.GetString(2).ToString());
    ASSERT_TRUE(db_->Commit(txn.get()).ok());
  }
  EXPECT_NEAR(total, kAccounts * kInitial, 0.001)
      << "transfers must conserve money exactly ("
      << committed.load() << " committed)";
  // And the churn really happened.
  EXPECT_GT(db_->GetStats().pack.rows_packed, 0);
}

TEST_F(IntegrationTest, TunerDisablesColdInsertOnlyTable) {
  // An insert-only, never-reused table under memory pressure gets its IMRS
  // use disabled by the auto partition tuner (the history pattern).
  DatabaseOptions options;
  options.buffer_cache_frames = 1024;
  options.imrs_cache_bytes = 256 * 1024;
  options.lock_timeout_ms = 200;
  options.ilm.tuning_window_txns = 50;
  options.ilm.hysteresis_windows = 2;
  options.ilm.min_new_rows_for_disable = 10;
  Result<std::unique_ptr<Database>> opened = Database::Open(options);
  ASSERT_TRUE(opened.ok());
  db_ = std::move(*opened);
  TableOptions topt;
  topt.name = "t";
  topt.schema = Schema({Column::Int64("id"), Column::Int64("v"),
                        Column::String("data", 64)});
  topt.primary_key = {0};
  table_ = *db_->CreateTable(topt);

  PartitionState* state = table_->partition(0).ilm;
  int64_t i = 0;
  // Insert-only load; run ticks so tuning windows elapse. Stop as soon as
  // the tuner reacts.
  for (int round = 0; round < 200 && state->imrs_enabled.load(); ++round) {
    for (int k = 0; k < 60; ++k) {
      auto txn = db_->Begin();
      ASSERT_TRUE(
          db_->Insert(txn.get(), table_, Record(i++, 0, std::string(50, 'c')))
              .ok());
      ASSERT_TRUE(db_->Commit(txn.get()).ok());
    }
    db_->RunGcOnce();
    db_->RunIlmTickOnce();
  }
  EXPECT_FALSE(state->imrs_enabled.load())
      << "tuner should disable an insert-only partition under pressure";
  // Subsequent inserts go page-store-direct.
  const int64_t page_ops_before = state->metrics.page_ops.Load();
  auto txn = db_->Begin();
  ASSERT_TRUE(
      db_->Insert(txn.get(), table_, Record(i++, 0, "direct")).ok());
  ASSERT_TRUE(db_->Commit(txn.get()).ok());
  EXPECT_GT(state->metrics.page_ops.Load(), page_ops_before);
}

}  // namespace
}  // namespace btrim
