// Tests for the cross-structure invariant checker (src/engine/validate.cc):
// a healthy database validates clean, and each class of deliberately
// injected corruption — a remapped RID-map entry, a leaked (unmapped but
// still queued) row, a tampered partition gauge — is detected and reported
// as Corruption. The injections are undone afterwards and the database must
// validate clean again, proving the checker has no side effects.

#include <gtest/gtest.h>

#include "engine/database.h"

namespace btrim {
namespace {

class ValidateTest : public ::testing::Test {
 protected:
  void Open() {
    DatabaseOptions options;
    options.buffer_cache_frames = 512;
    options.imrs_cache_bytes = 8 << 20;
    options.lock_timeout_ms = 100;
    Result<std::unique_ptr<Database>> opened = Database::Open(options);
    ASSERT_TRUE(opened.ok());
    db_ = std::move(*opened);

    TableOptions topt;
    topt.name = "kv";
    topt.schema = Schema({
        Column::Int64("id"),
        Column::Int64("group_id"),
        Column::String("value", 64),
    });
    topt.primary_key = {0};
    Result<Table*> created = db_->CreateTable(topt);
    ASSERT_TRUE(created.ok());
    table_ = *created;
  }

  std::string Record(int64_t id, int64_t group, const std::string& value) {
    RecordBuilder b(&table_->schema());
    b.AddInt64(id).AddInt64(group).AddString(value);
    return b.Finish().ToString();
  }

  void InsertRows(int64_t n) {
    for (int64_t i = 0; i < n; ++i) {
      auto txn = db_->Begin();
      ASSERT_TRUE(db_->Insert(txn.get(), table_, Record(i, i % 7, "v")).ok());
      ASSERT_TRUE(db_->Commit(txn.get()).ok());
    }
    // GC processes the commit queue, which links the new rows into their
    // partition ILM queues — exercising the queue phase of the checker.
    db_->RunGcOnce();
  }

  void UpdateValue(int64_t id, const std::string& value) {
    auto txn = db_->Begin();
    std::string pk = table_->pk_encoder().KeyForInts({id});
    Status s = db_->Update(txn.get(), table_, pk, [&](std::string* payload) {
      RecordEditor e(&table_->schema(), Slice(*payload));
      e.SetString(2, value);
      *payload = e.Encode();
    });
    ASSERT_TRUE(s.ok()) << s.ToString();
    ASSERT_TRUE(db_->Commit(txn.get()).ok());
  }

  /// First (rid, row) pair of the RID-map, for tamper targets.
  std::pair<Rid, ImrsRow*> AnyMappedRow() {
    std::pair<Rid, ImrsRow*> found{Rid{}, nullptr};
    db_->rid_map()->ForEach([&found](Rid rid, ImrsRow* row) {
      if (found.second == nullptr) found = {rid, row};
    });
    return found;
  }

  std::unique_ptr<Database> db_;
  Table* table_ = nullptr;
};

TEST_F(ValidateTest, CleanDatabaseValidates) {
  Open();
  InsertRows(100);
  ValidateReport report;
  Status s = db_->ValidateInvariants(&report);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(report.rows_checked, 100);
  EXPECT_GE(report.versions_checked, 100);
  EXPECT_EQ(report.queued_rows, 100);
  EXPECT_GE(report.partitions_checked, 1);
}

TEST_F(ValidateTest, EmptyDatabaseValidates) {
  Open();
  ValidateReport report;
  Status s = db_->ValidateInvariants(&report);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(report.rows_checked, 0);
}

TEST_F(ValidateTest, ActiveTransactionMakesValidateBusy) {
  Open();
  InsertRows(5);
  auto txn = db_->Begin();
  EXPECT_TRUE(db_->ValidateInvariants().IsBusy());
  ASSERT_TRUE(db_->Abort(txn.get()).ok());
  EXPECT_TRUE(db_->ValidateInvariants().ok());
}

TEST_F(ValidateTest, DetectsRemappedRidMapEntry) {
  Open();
  InsertRows(20);
  auto [rid, row] = AnyMappedRow();
  ASSERT_NE(row, nullptr);

  // Register the same row under a second, bogus RID: the checker must spot
  // that the entry's key disagrees with the row's own identity (or that one
  // row is mapped twice).
  Rid bogus = rid;
  bogus.page_no += 1000;
  db_->rid_map()->Insert(bogus, row);
  Status s = db_->ValidateInvariants();
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();

  ASSERT_TRUE(db_->rid_map()->Erase(bogus));
  Status clean = db_->ValidateInvariants();
  EXPECT_TRUE(clean.ok()) << clean.ToString();
}

TEST_F(ValidateTest, DetectsLeakedRowStillInQueue) {
  Open();
  InsertRows(20);
  auto [rid, row] = AnyMappedRow();
  ASSERT_NE(row, nullptr);
  ASSERT_TRUE(row->HasFlag(kRowInQueue));

  // Drop the RID-map entry while the row is still linked into its ILM
  // queue: the row became unreachable for transactions but the ILM layer
  // still references it — a leak the queue phase must report.
  ASSERT_TRUE(db_->rid_map()->Erase(rid));
  Status s = db_->ValidateInvariants();
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
  EXPECT_NE(s.ToString().find("leaked"), std::string::npos) << s.ToString();

  db_->rid_map()->Insert(rid, row);
  Status clean = db_->ValidateInvariants();
  EXPECT_TRUE(clean.ok()) << clean.ToString();
}

TEST_F(ValidateTest, DetectsTamperedPartitionGauges) {
  Open();
  InsertRows(20);
  PartitionState* ilm = table_->partition(0).ilm;
  ASSERT_NE(ilm, nullptr);

  ilm->metrics.imrs_bytes.Add(12345);
  Status s = db_->ValidateInvariants();
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
  ilm->metrics.imrs_bytes.Sub(12345);

  ilm->metrics.imrs_rows.Add(1);
  Status r = db_->ValidateInvariants();
  EXPECT_TRUE(r.IsCorruption()) << r.ToString();
  ilm->metrics.imrs_rows.Sub(1);

  Status clean = db_->ValidateInvariants();
  EXPECT_TRUE(clean.ok()) << clean.ToString();
}

TEST_F(ValidateTest, DetectsCorruptedVersionOrder) {
  Open();
  InsertRows(10);

  // Give row 3 a second committed version, then tamper the head timestamp
  // so the chain is no longer newest-first.
  UpdateValue(3, "second");
  ImrsRow* row = nullptr;
  db_->rid_map()->ForEach([&](Rid, ImrsRow* r) {
    RowVersion* head = r->latest.load();
    if (head != nullptr && head->older.load() != nullptr) row = r;
  });
  ASSERT_NE(row, nullptr);
  RowVersion* head = row->latest.load();
  const uint64_t saved = head->commit_ts.load();
  const uint64_t older_ts = head->older.load()->commit_ts.load();
  ASSERT_GT(saved, older_ts);

  head->commit_ts.store(older_ts - 1);
  Status s = db_->ValidateInvariants();
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();

  head->commit_ts.store(saved);
  Status clean = db_->ValidateInvariants();
  EXPECT_TRUE(clean.ok()) << clean.ToString();
}

TEST_F(ValidateTest, ValidatesAfterUpdatesDeletesAndGc) {
  Open();
  InsertRows(50);
  for (int64_t i = 0; i < 50; i += 2) {
    UpdateValue(i, "updated");
  }
  for (int64_t i = 1; i < 50; i += 4) {
    auto txn = db_->Begin();
    std::string pk = table_->pk_encoder().KeyForInts({i});
    ASSERT_TRUE(db_->Delete(txn.get(), table_, pk).ok());
    ASSERT_TRUE(db_->Commit(txn.get()).ok());
  }
  db_->RunGcOnce();
  db_->RunIlmTickOnce();
  db_->RunGcOnce();

  ValidateReport report;
  Status s = db_->ValidateInvariants(&report);
  EXPECT_TRUE(s.ok()) << s.ToString();
}

}  // namespace
}  // namespace btrim
