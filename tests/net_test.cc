// Wire-protocol and server tests (DESIGN.md Sec. 16).
//
// The golden-bytes fixtures pin the wire encoding the same way
// wal_format_test.cc pins the log format: if one fails, the protocol
// changed — either revert, or bump kProtocolVersion and regenerate. Old
// clients must keep speaking to new servers, or every fleet rollout
// becomes a flag day.
//
// The fuzz sweeps assert the server's contract for malformed input: an
// error reply or a dropped connection, never a crash (ASan runs this
// suite) — and the listener stays healthy for the next connection.

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/database.h"
#include "net/client.h"
#include "obs/metrics_registry.h"
#include "net/protocol.h"
#include "net/server.h"
#include "tpcc/loader.h"
#include "tpcc/txns.h"

namespace btrim {
namespace net {
namespace {

std::string FromHex(const std::string& hex) {
  std::string out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i + 1 < hex.size(); i += 2) {
    out.push_back(static_cast<char>(
        std::stoi(hex.substr(i, 2), nullptr, 16)));
  }
  return out;
}

std::string ToHex(const std::string& bytes) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    out.push_back(kDigits[c >> 4]);
    out.push_back(kDigits[c & 0xf]);
  }
  return out;
}

// --- golden bytes ----------------------------------------------------------

struct RequestGolden {
  const char* name;
  const char* hex;  // full frame: header + payload
  Request req;
};

// Generated once from the reference encoder; do not regenerate casually
// (see file comment).
std::vector<RequestGolden> RequestGoldens() {
  std::vector<RequestGolden> cases;
  {
    Request r;
    r.op = OpCode::kHello;
    r.magic = kMagic;
    r.version = kProtocolVersion;
    r.tenant = "t1";
    cases.push_back({"hello", "0b000000014254524d010002007431", r});
  }
  {
    Request r;
    r.op = OpCode::kPing;
    cases.push_back({"ping", "0100000002", r});
  }
  {
    Request r;
    r.op = OpCode::kBegin;
    cases.push_back({"begin", "0100000010", r});
  }
  {
    Request r;
    r.op = OpCode::kTpcc;
    r.txn_type = 1;
    r.warehouse = 3;
    cases.push_back({"tpcc", "06000000130103000000", r});
  }
  {
    Request r;
    r.op = OpCode::kGet;
    r.table = "kv";
    r.key = 42;
    cases.push_back({"get", "0d0000002002006b762a00000000000000", r});
  }
  {
    Request r;
    r.op = OpCode::kPut;
    r.table = "kv";
    r.key = 1;
    r.value = "hi";
    cases.push_back({"put", "110000002102006b76010000000000000002006869", r});
  }
  {
    Request r;
    r.op = OpCode::kScan;
    r.table = "kv";
    r.key = 5;
    r.limit = 10;
    cases.push_back(
        {"scan", "110000002202006b7605000000000000000a000000", r});
  }
  {
    Request r;
    r.op = OpCode::kMark;
    r.marker = -1;
    cases.push_back({"mark", "0900000030ffffffffffffffff", r});
  }
  return cases;
}

TEST(ProtocolGolden, RequestsMatchGoldenBytes) {
  for (const RequestGolden& g : RequestGoldens()) {
    std::string frame;
    AppendRequestFrame(&frame, g.req);
    EXPECT_EQ(ToHex(frame), g.hex) << g.name;
  }
}

TEST(ProtocolGolden, RequestGoldenBytesParse) {
  for (const RequestGolden& g : RequestGoldens()) {
    const std::string frame = FromHex(g.hex);
    size_t frame_len = 0;
    Slice payload;
    ASSERT_EQ(TryExtractFrame(frame.data(), frame.size(), &frame_len,
                              &payload),
              FrameGate::kReady)
        << g.name;
    EXPECT_EQ(frame_len, frame.size()) << g.name;
    Request req;
    ASSERT_TRUE(ParseRequest(payload, &req).ok()) << g.name;
    EXPECT_EQ(req.op, g.req.op) << g.name;
    EXPECT_EQ(req.magic, g.req.magic) << g.name;
    EXPECT_EQ(req.version, g.req.version) << g.name;
    EXPECT_EQ(req.tenant, g.req.tenant) << g.name;
    EXPECT_EQ(req.txn_type, g.req.txn_type) << g.name;
    EXPECT_EQ(req.warehouse, g.req.warehouse) << g.name;
    EXPECT_EQ(req.table, g.req.table) << g.name;
    EXPECT_EQ(req.key, g.req.key) << g.name;
    EXPECT_EQ(req.value, g.req.value) << g.name;
    EXPECT_EQ(req.limit, g.req.limit) << g.name;
    EXPECT_EQ(req.marker, g.req.marker) << g.name;
  }
}

TEST(ProtocolGolden, ResponsesMatchGoldenBytes) {
  {
    Response r;
    r.op = OpCode::kGet;
    r.value = "hello";
    std::string frame;
    AppendResponseFrame(&frame, r);
    EXPECT_EQ(ToHex(frame), "0b00000020000000050068656c6c6f");
  }
  {
    Response r;
    r.op = OpCode::kTpcc;
    r.committed = true;
    std::string frame;
    AppendResponseFrame(&frame, r);
    EXPECT_EQ(ToHex(frame), "06000000130000000100");
  }
  {
    Response r;
    r.op = OpCode::kTpcc;
    r.code = Status::Code::kBusy;
    r.message = "shed";
    std::string frame;
    AppendResponseFrame(&frame, r);
    EXPECT_EQ(ToHex(frame), "080000001305040073686564");
  }
  {
    Response r;
    r.op = OpCode::kScan;
    r.rows.push_back({1, "a"});
    r.rows.push_back({2, "bc"});
    std::string frame;
    AppendResponseFrame(&frame, r);
    EXPECT_EQ(ToHex(frame),
              "1f0000002200000002000000010000000000000001006102000000000000"
              "0002006263");
  }
}

TEST(ProtocolGolden, ResponseGoldenBytesParse) {
  const std::string frame = FromHex(
      "1f00000022000000020000000100000000000000010061020000000000000002006263");
  size_t frame_len = 0;
  Slice payload;
  ASSERT_EQ(TryExtractFrame(frame.data(), frame.size(), &frame_len, &payload),
            FrameGate::kReady);
  Response resp;
  ASSERT_TRUE(ParseResponse(payload, &resp).ok());
  EXPECT_EQ(resp.op, OpCode::kScan);
  EXPECT_TRUE(resp.ok());
  ASSERT_EQ(resp.rows.size(), 2u);
  EXPECT_EQ(resp.rows[0].key, 1);
  EXPECT_EQ(resp.rows[0].value, "a");
  EXPECT_EQ(resp.rows[1].key, 2);
  EXPECT_EQ(resp.rows[1].value, "bc");
}

// --- round trips -----------------------------------------------------------

TEST(Protocol, RequestRoundTripEdgeValues) {
  Request r;
  r.op = OpCode::kGet;
  r.table = "a-table-with-a-long-name";
  r.key = INT64_MIN;
  std::string frame;
  AppendRequestFrame(&frame, r);
  size_t frame_len = 0;
  Slice payload;
  ASSERT_EQ(TryExtractFrame(frame.data(), frame.size(), &frame_len, &payload),
            FrameGate::kReady);
  Request back;
  ASSERT_TRUE(ParseRequest(payload, &back).ok());
  EXPECT_EQ(back.table, r.table);
  EXPECT_EQ(back.key, INT64_MIN);
}

TEST(Protocol, ResponseRoundTripAllCodes) {
  for (int code = 0; code <= static_cast<int>(Status::Code::kShutdown);
       ++code) {
    Response r;
    r.op = OpCode::kPut;
    r.code = static_cast<Status::Code>(code);
    r.message = code == 0 ? "" : "something went wrong";
    std::string frame;
    AppendResponseFrame(&frame, r);
    size_t frame_len = 0;
    Slice payload;
    ASSERT_EQ(
        TryExtractFrame(frame.data(), frame.size(), &frame_len, &payload),
        FrameGate::kReady);
    Response back;
    ASSERT_TRUE(ParseResponse(payload, &back).ok()) << code;
    EXPECT_EQ(back.code, r.code);
    EXPECT_EQ(back.message, r.message);
  }
}

// --- malformed input -------------------------------------------------------

TEST(Protocol, ParseRejectsEmptyAndUnknownOpcode) {
  Request req;
  EXPECT_FALSE(ParseRequest(Slice(), &req).ok());
  const std::string unknown(1, '\x7f');
  EXPECT_FALSE(ParseRequest(Slice(unknown), &req).ok());
}

TEST(Protocol, ParseRejectsEveryTruncation) {
  for (const RequestGolden& g : RequestGoldens()) {
    const std::string frame = FromHex(g.hex);
    const std::string payload = frame.substr(kFrameHeaderBytes);
    // Every strict prefix of a payload must fail: either a field is cut
    // short or (for body-less ops) the prefix is empty.
    for (size_t len = 0; len < payload.size(); ++len) {
      Request req;
      EXPECT_FALSE(ParseRequest(Slice(payload.data(), len), &req).ok())
          << g.name << " truncated to " << len;
    }
  }
}

TEST(Protocol, ParseRejectsTrailingGarbage) {
  for (const RequestGolden& g : RequestGoldens()) {
    std::string payload = FromHex(g.hex).substr(kFrameHeaderBytes);
    payload.push_back('\x00');
    Request req;
    EXPECT_FALSE(ParseRequest(Slice(payload), &req).ok()) << g.name;
  }
}

TEST(Protocol, FrameGateBounds) {
  size_t frame_len = 0;
  Slice payload;
  // Partial header, then partial payload.
  const std::string frame = FromHex("0d0000002002006b762a00000000000000");
  EXPECT_EQ(TryExtractFrame(frame.data(), 2, &frame_len, &payload),
            FrameGate::kNeedMore);
  EXPECT_EQ(TryExtractFrame(frame.data(), frame.size() - 1, &frame_len,
                            &payload),
            FrameGate::kNeedMore);
  // A header claiming more than kMaxFrameBytes is unrecoverable.
  std::string huge(kFrameHeaderBytes, '\0');
  huge[0] = '\x01';
  huge[2] = '\x20';  // 0x00200001 > 1 MiB
  EXPECT_EQ(TryExtractFrame(huge.data(), huge.size(), &frame_len, &payload),
            FrameGate::kTooBig);
}

// --- server end-to-end -----------------------------------------------------

class ServerTest : public ::testing::Test {
 protected:
  void Open() {
    DatabaseOptions options;
    options.buffer_cache_frames = 2048;
    options.imrs_cache_bytes = 16u << 20;
    options.lock_timeout_ms = 50;
    Result<std::unique_ptr<Database>> opened = Database::Open(options);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    db_ = std::move(*opened);

    TableOptions kv;
    kv.name = "kv";
    kv.schema = Schema({Column::Int64("k"), Column::String("v", 256)});
    kv.primary_key = {0};
    Result<Table*> table = db_->CreateTable(std::move(kv));
    ASSERT_TRUE(table.ok()) << table.status().ToString();

    TableOptions wide;
    wide.name = "wide";
    wide.schema = Schema({Column::Int64("a"), Column::Int64("b"),
                          Column::String("c", 32)});
    wide.primary_key = {0};
    ASSERT_TRUE(db_->CreateTable(std::move(wide)).ok());

    std::unique_ptr<Transaction> txn = db_->Begin();
    for (int64_t k = 0; k < 100; ++k) {
      RecordBuilder builder(&(*table)->schema());
      builder.AddInt64(k).AddString("seed" + std::to_string(k));
      ASSERT_TRUE(db_->Insert(txn.get(), *table, builder.Finish()).ok());
    }
    ASSERT_TRUE(db_->Commit(txn.get()).ok());
  }

  void StartServer(ServerOptions opts = {}) {
    opts.port = 0;
    Result<std::unique_ptr<Server>> started =
        Server::Start(db_.get(), opts);
    ASSERT_TRUE(started.ok()) << started.status().ToString();
    server_ = std::move(*started);
  }

  std::unique_ptr<Client> MustConnect(const std::string& tenant = "") {
    Result<std::unique_ptr<Client>> c =
        Client::Connect("127.0.0.1", server_->port(), tenant);
    EXPECT_TRUE(c.ok()) << c.status().ToString();
    return c.ok() ? std::move(*c) : nullptr;
  }

  std::unique_ptr<Client> MustConnectRaw() {
    Result<std::unique_ptr<Client>> c =
        Client::ConnectRaw("127.0.0.1", server_->port());
    EXPECT_TRUE(c.ok()) << c.status().ToString();
    return c.ok() ? std::move(*c) : nullptr;
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServerTest, KvOpsOverTheWire) {
  Open();
  StartServer();
  std::unique_ptr<Client> client = MustConnect();
  ASSERT_NE(client, nullptr);

  Result<Response> ping = client->Ping();
  ASSERT_TRUE(ping.ok()) << ping.status().ToString();
  EXPECT_TRUE(ping->ok());

  Result<Response> get = client->Get("kv", 7);
  ASSERT_TRUE(get.ok());
  ASSERT_TRUE(get->ok()) << get->message;
  EXPECT_EQ(get->value, "seed7");

  ASSERT_TRUE(client->Put("kv", 7, "updated")->ok());
  EXPECT_EQ(client->Get("kv", 7)->value, "updated");

  ASSERT_TRUE(client->Put("kv", 1000, "fresh")->ok());  // insert path
  EXPECT_EQ(client->Get("kv", 1000)->value, "fresh");

  Result<Response> missing = client->Get("kv", 555444);
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->code, Status::Code::kNotFound);

  Result<Response> scan = client->Scan("kv", 10, 5);
  ASSERT_TRUE(scan.ok());
  ASSERT_TRUE(scan->ok()) << scan->message;
  ASSERT_EQ(scan->rows.size(), 5u);
  EXPECT_EQ(scan->rows[0].key, 10);
  EXPECT_EQ(scan->rows[4].key, 14);
}

TEST_F(ServerTest, ExplicitTransactions) {
  Open();
  StartServer();
  std::unique_ptr<Client> client = MustConnect();
  ASSERT_NE(client, nullptr);

  ASSERT_TRUE(client->Begin()->ok());
  ASSERT_TRUE(client->Put("kv", 5, "txn-value")->ok());
  ASSERT_TRUE(client->Commit()->ok());
  EXPECT_EQ(client->Get("kv", 5)->value, "txn-value");

  ASSERT_TRUE(client->Begin()->ok());
  ASSERT_TRUE(client->Put("kv", 5, "doomed")->ok());
  ASSERT_TRUE(client->Abort()->ok());
  EXPECT_EQ(client->Get("kv", 5)->value, "txn-value");

  EXPECT_EQ(client->Commit()->code, Status::Code::kInvalidArgument);
  ASSERT_TRUE(client->Begin()->ok());
  EXPECT_EQ(client->Begin()->code, Status::Code::kInvalidArgument);
  ASSERT_TRUE(client->Abort()->ok());
}

TEST_F(ServerTest, TableShapeErrors) {
  Open();
  StartServer();
  std::unique_ptr<Client> client = MustConnect();
  ASSERT_NE(client, nullptr);
  EXPECT_EQ(client->Get("nope", 1)->code, Status::Code::kNotFound);
  EXPECT_EQ(client->Get("wide", 1)->code, Status::Code::kInvalidArgument);
  // Oversized value: rejected before touching the engine; an open txn
  // survives (nothing executed under it).
  ASSERT_TRUE(client->Begin()->ok());
  EXPECT_EQ(client->Put("kv", 1, std::string(300, 'x'))->code,
            Status::Code::kInvalidArgument);
  EXPECT_TRUE(client->Commit()->ok());
}

TEST_F(ServerTest, TpccWithoutContextIsNotSupported) {
  Open();
  StartServer();
  std::unique_ptr<Client> client = MustConnect();
  ASSERT_NE(client, nullptr);
  EXPECT_EQ(client->Tpcc(0, 0)->code, Status::Code::kNotSupported);
}

TEST_F(ServerTest, TpccOverTheWire) {
  Open();
  tpcc::Scale scale;
  scale.warehouses = 1;
  Result<tpcc::Tables> tables = tpcc::CreateTables(db_.get(), scale);
  ASSERT_TRUE(tables.ok()) << tables.status().ToString();
  ASSERT_TRUE(tpcc::LoadDatabase(db_.get(), *tables, scale, 3).ok());
  tpcc::TpccContext ctx;
  ctx.db = db_.get();
  ctx.tables = *tables;
  ctx.scale = scale;
  ctx.next_history_id = 100000;

  ServerOptions opts;
  opts.tpcc = &ctx;
  StartServer(opts);
  std::unique_ptr<Client> client = MustConnect();
  ASSERT_NE(client, nullptr);

  int64_t acked = 0;
  for (int i = 0; i < 50; ++i) {
    Result<Response> resp = client->Tpcc(static_cast<uint8_t>(i % 5), 0);
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    ASSERT_TRUE(resp->ok()) << resp->message;
    if (resp->committed) ++acked;
  }
  EXPECT_GT(acked, 0);

  EXPECT_EQ(client->Tpcc(9, 0)->code, Status::Code::kInvalidArgument);
  EXPECT_EQ(client->Tpcc(0, 99)->code, Status::Code::kInvalidArgument);
  ASSERT_TRUE(client->Begin()->ok());
  EXPECT_EQ(client->Tpcc(0, 0)->code, Status::Code::kInvalidArgument);
  ASSERT_TRUE(client->Abort()->ok());
}

TEST_F(ServerTest, AdmissionControlShedsDeterministically) {
  Open();
  ServerOptions opts;
  opts.max_inflight = 0;  // shed every data op; control ops exempt
  StartServer(opts);
  std::unique_ptr<Client> client = MustConnect();
  ASSERT_NE(client, nullptr);

  EXPECT_TRUE(client->Ping()->ok());
  Result<Response> put = client->Put("kv", 1, "x");
  ASSERT_TRUE(put.ok());
  EXPECT_EQ(put->code, Status::Code::kBusy);
  EXPECT_TRUE(client->Ping()->ok());  // connection unharmed
  EXPECT_GT(server_->sheds(), 0);
}

TEST_F(ServerTest, PipelinedRequestsReplyInOrder) {
  Open();
  StartServer();
  std::unique_ptr<Client> client = MustConnect();
  ASSERT_NE(client, nullptr);

  std::string burst;
  constexpr int kN = 20;
  for (int i = 0; i < kN; ++i) {
    Request req;
    req.op = OpCode::kGet;
    req.table = "kv";
    req.key = i;
    AppendRequestFrame(&burst, req);
  }
  ASSERT_TRUE(client->SendBytes(burst.data(), burst.size()).ok());
  for (int i = 0; i < kN; ++i) {
    Result<Response> resp = client->RecvResponse();
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    ASSERT_TRUE(resp->ok());
    EXPECT_EQ(resp->value, "seed" + std::to_string(i)) << i;
  }
}

TEST_F(ServerTest, HandshakeRequiredAndValidated) {
  Open();
  StartServer();
  {
    // No handshake: error reply, then the server drops the connection.
    std::unique_ptr<Client> raw = MustConnectRaw();
    ASSERT_NE(raw, nullptr);
    Request ping;
    ping.op = OpCode::kPing;
    std::string frame;
    AppendRequestFrame(&frame, ping);
    ASSERT_TRUE(raw->SendBytes(frame.data(), frame.size()).ok());
    Result<Response> resp = raw->RecvResponse();
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp->code, Status::Code::kInvalidArgument);
    EXPECT_FALSE(raw->RecvFramePayload().ok());  // closed
  }
  {
    // Bad magic: rejected and dropped.
    std::unique_ptr<Client> raw = MustConnectRaw();
    ASSERT_NE(raw, nullptr);
    Request hello;
    hello.op = OpCode::kHello;
    hello.magic = 0xdeadbeef;
    hello.version = kProtocolVersion;
    std::string frame;
    AppendRequestFrame(&frame, hello);
    ASSERT_TRUE(raw->SendBytes(frame.data(), frame.size()).ok());
    Result<Response> resp = raw->RecvResponse();
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp->code, Status::Code::kInvalidArgument);
    EXPECT_FALSE(raw->RecvFramePayload().ok());
  }
  {
    // Duplicate handshake: error reply, but the session keeps working.
    std::unique_ptr<Client> client = MustConnect();
    ASSERT_NE(client, nullptr);
    Request hello;
    hello.op = OpCode::kHello;
    hello.magic = kMagic;
    hello.version = kProtocolVersion;
    Result<Response> resp = client->Call(hello);
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp->code, Status::Code::kInvalidArgument);
    EXPECT_TRUE(client->Ping()->ok());
  }
}

TEST_F(ServerTest, MalformedFramesNeverCrash) {
  Open();
  StartServer();

  {
    // Oversized frame claim: error reply (or drop), connection dies.
    std::unique_ptr<Client> raw = MustConnectRaw();
    ASSERT_NE(raw, nullptr);
    const std::string huge = FromHex("01002000");  // claims 2 MiB
    ASSERT_TRUE(raw->SendBytes(huge.data(), huge.size()).ok());
    Result<Response> resp = raw->RecvResponse();
    if (resp.ok()) {
      EXPECT_FALSE(resp->ok());
    }
    EXPECT_FALSE(raw->RecvFramePayload().ok());
    EXPECT_GT(server_->protocol_errors(), 0);
  }
  {
    // Unknown opcode inside a well-formed frame.
    std::unique_ptr<Client> raw = MustConnectRaw();
    ASSERT_NE(raw, nullptr);
    const std::string frame = FromHex("01000000ee");
    ASSERT_TRUE(raw->SendBytes(frame.data(), frame.size()).ok());
    Result<Response> resp = raw->RecvResponse();
    if (resp.ok()) {
      EXPECT_FALSE(resp->ok());
    }
    EXPECT_FALSE(raw->RecvFramePayload().ok());
  }
  {
    // Truncated frame, then the client vanishes: server must just reap it.
    std::unique_ptr<Client> raw = MustConnectRaw();
    ASSERT_NE(raw, nullptr);
    const std::string partial = FromHex("0d00000020");
    ASSERT_TRUE(raw->SendBytes(partial.data(), partial.size()).ok());
  }

  // Seeded garbage sweep. Every connection must end in an error reply or
  // a drop — and the listener must stay healthy throughout.
  std::mt19937_64 rnd(0xf22);
  for (int i = 0; i < 40; ++i) {
    std::unique_ptr<Client> raw = MustConnectRaw();
    ASSERT_NE(raw, nullptr);
    std::string garbage(1 + rnd() % 128, '\0');
    for (char& c : garbage) c = static_cast<char>(rnd() & 0xff);
    ASSERT_TRUE(raw->SendBytes(garbage.data(), garbage.size()).ok());
    // Drain until the server drops us or stops replying. Cap the reads:
    // garbage can parse as at most a few frames.
    for (int reads = 0; reads < 8; ++reads) {
      if (!raw->RecvFramePayload().ok()) break;
    }
  }

  // The server survived all of it.
  std::unique_ptr<Client> client = MustConnect();
  ASSERT_NE(client, nullptr);
  EXPECT_TRUE(client->Ping()->ok());
  EXPECT_EQ(client->Get("kv", 3)->value, "seed3");
}

TEST_F(ServerTest, StopWithLiveConnections) {
  Open();
  StartServer();
  std::unique_ptr<Client> client = MustConnect();
  ASSERT_NE(client, nullptr);
  EXPECT_TRUE(client->Ping()->ok());
  EXPECT_EQ(server_->active_conns(), 1);
  server_->Stop();
  server_->Stop();  // idempotent
  EXPECT_FALSE(client->Ping().ok());
}

TEST_F(ServerTest, PerTenantCounters) {
  Open();
  StartServer();
  std::unique_ptr<Client> a = MustConnect("alpha");
  std::unique_ptr<Client> b = MustConnect("beta");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_TRUE(a->Ping()->ok());
  ASSERT_TRUE(b->Ping()->ok());
  obs::MetricSample sample;
  obs::MetricLabels labels{"net", "", "", "alpha"};
  EXPECT_TRUE(db_->metrics_registry()->Lookup("net.tenant_requests", labels,
                                              &sample));
  labels.tenant = "beta";
  EXPECT_TRUE(db_->metrics_registry()->Lookup("net.tenant_requests", labels,
                                              &sample));
}

}  // namespace
}  // namespace net
}  // namespace btrim
