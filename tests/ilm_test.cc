// Unit tests for the ILM layer: metrics windows, relaxed-LRU queues, the
// timestamp-filter learner, the auto partition tuner, the Pack subsystem's
// level/apportioning/selection logic, and the IlmManager admission rules.

#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "ilm/ilm_manager.h"
#include "ilm/ilm_queue.h"
#include "ilm/metrics.h"
#include "ilm/pack.h"
#include "ilm/tsf.h"
#include "ilm/tuner.h"

namespace btrim {
namespace {

// --- metrics -------------------------------------------------------------------

TEST(MetricsTest, SnapshotCapturesCounters) {
  PartitionMetrics m;
  m.reuse_select.Add(3);
  m.reuse_update.Add(2);
  m.reuse_delete.Add(1);
  m.inserts_imrs.Add(10);
  m.imrs_bytes.Add(4096);
  m.imrs_rows.Add(7);
  MetricsSnapshot s = m.Snapshot();
  EXPECT_EQ(s.ReuseOps(), 6);
  EXPECT_EQ(s.NewRows(), 10);
  EXPECT_EQ(s.imrs_bytes, 4096);
  EXPECT_EQ(s.imrs_rows, 7);
}

TEST(MetricsTest, WindowDeltaSubtractsCountersKeepsGauges) {
  PartitionMetrics m;
  m.reuse_select.Add(100);
  m.imrs_bytes.Add(1000);
  MetricsSnapshot w1 = m.Snapshot();
  m.reuse_select.Add(40);
  m.imrs_bytes.Add(500);  // gauge moves to 1500
  MetricsSnapshot w2 = m.Snapshot();
  MetricsSnapshot d = w2.WindowDelta(w1);
  EXPECT_EQ(d.reuse_select, 40);  // delta
  EXPECT_EQ(d.imrs_bytes, 1500);  // current gauge value
}

TEST(MetricsTest, ReuseRatePerRow) {
  MetricsSnapshot s;
  s.reuse_select = 30;
  s.imrs_rows = 10;
  EXPECT_DOUBLE_EQ(PartitionState::ReuseRate(s), 3.0);
  s.imrs_rows = 0;
  EXPECT_DOUBLE_EQ(PartitionState::ReuseRate(s), 0.0);
}

// --- IlmQueue ------------------------------------------------------------------

TEST(IlmQueueTest, FifoOrderHeadToTail) {
  IlmQueue q;
  ImrsRow rows[3];
  for (auto& r : rows) q.PushTail(&r);
  EXPECT_EQ(q.Size(), 3);
  EXPECT_EQ(q.PopHead(), &rows[0]);
  EXPECT_EQ(q.PopHead(), &rows[1]);
  EXPECT_EQ(q.PopHead(), &rows[2]);
  EXPECT_EQ(q.PopHead(), nullptr);
}

TEST(IlmQueueTest, PushSetsFlagPopClearsIt) {
  IlmQueue q;
  ImrsRow row;
  q.PushTail(&row);
  EXPECT_TRUE(row.HasFlag(kRowInQueue));
  EXPECT_EQ(q.PopHead(), &row);
  EXPECT_FALSE(row.HasFlag(kRowInQueue));
}

TEST(IlmQueueTest, DoublePushIsIdempotent) {
  IlmQueue q;
  ImrsRow row;
  q.PushTail(&row);
  q.PushTail(&row);
  EXPECT_EQ(q.Size(), 1);
}

TEST(IlmQueueTest, HotRowReinsertionMovesToTail) {
  IlmQueue q;
  ImrsRow a, b;
  q.PushTail(&a);
  q.PushTail(&b);
  ImrsRow* popped = q.PopHead();  // a
  q.PushTail(popped);             // a goes behind b
  EXPECT_EQ(q.PopHead(), &b);
  EXPECT_EQ(q.PopHead(), &a);
}

TEST(IlmQueueTest, RemoveFromMiddle) {
  IlmQueue q;
  ImrsRow a, b, c;
  q.PushTail(&a);
  q.PushTail(&b);
  q.PushTail(&c);
  q.Remove(&b);
  EXPECT_EQ(q.Size(), 2);
  EXPECT_EQ(q.PopHead(), &a);
  EXPECT_EQ(q.PopHead(), &c);
  // Removing an unlinked row is a no-op.
  q.Remove(&b);
  EXPECT_EQ(q.Size(), 0);
}

TEST(IlmQueueTest, ForEachWalksHeadFirst) {
  IlmQueue q;
  ImrsRow rows[5];
  for (auto& r : rows) q.PushTail(&r);
  std::vector<ImrsRow*> seen;
  q.ForEach([&](ImrsRow* r) {
    seen.push_back(r);
    return true;
  });
  ASSERT_EQ(seen.size(), 5u);
  EXPECT_EQ(seen.front(), &rows[0]);
  EXPECT_EQ(seen.back(), &rows[4]);
  // Early stop.
  int count = 0;
  q.ForEach([&](ImrsRow*) { return ++count < 2; });
  EXPECT_EQ(count, 2);
}

// --- TSF -----------------------------------------------------------------------

class TsfTest : public ::testing::Test {
 protected:
  TsfTest() {
    config_.steady_cache_pct = 0.70;
    config_.tsf_observe_pct = 0.02;
    config_.tsf_relearn_interval = 1000;
  }
  IlmConfig config_;
};

TEST_F(TsfTest, LearnsTauFromGrowthRate) {
  TsfLearner tsf(config_);
  const int64_t cap = 1000000;
  // First observe starts the cycle at (ts=100, util=0).
  tsf.Observe(100, 0, cap);
  EXPECT_EQ(tsf.Tau(), 0u);
  // 2% growth after 50 ticks: Ʈ = 50 * 0.70 / 0.02 = 1750.
  tsf.Observe(150, 20000, cap);
  EXPECT_EQ(tsf.Tau(), 1750u);
  EXPECT_EQ(tsf.GetStats().learn_cycles, 1);
}

TEST_F(TsfTest, SubThresholdGrowthKeepsWaiting) {
  TsfLearner tsf(config_);
  tsf.Observe(100, 0, 1000000);
  tsf.Observe(150, 10000, 1000000);  // only 1% grown
  EXPECT_EQ(tsf.Tau(), 0u);
  tsf.Observe(200, 20000, 1000000);  // now 2%
  EXPECT_EQ(tsf.Tau(), (200 - 100) * 35u);  // 100 * 0.7 / 0.02
}

TEST_F(TsfTest, ShrinkingUtilizationRestartsObservation) {
  TsfLearner tsf(config_);
  tsf.Observe(100, 50000, 1000000);
  // Pack shrank usage: restart at (200, 30000).
  tsf.Observe(200, 30000, 1000000);
  // Growth of 2% from the restart point.
  tsf.Observe(260, 50000, 1000000);
  EXPECT_EQ(tsf.Tau(), (260 - 200) * 35u);
}

TEST_F(TsfTest, RelearnsAfterInterval) {
  TsfLearner tsf(config_);
  tsf.Observe(100, 0, 1000000);
  tsf.Observe(150, 20000, 1000000);
  const uint64_t first = tsf.Tau();
  // Too early to relearn: observations ignored.
  tsf.Observe(500, 0, 1000000);
  tsf.Observe(600, 90000, 1000000);
  EXPECT_EQ(tsf.Tau(), first);
  // After the relearn interval a new cycle starts and updates Ʈ.
  tsf.Observe(1200, 0, 1000000);
  tsf.Observe(1300, 20000, 1000000);
  EXPECT_NE(tsf.Tau(), first);
}

TEST_F(TsfTest, IsRecentUsesTau) {
  TsfLearner tsf(config_);
  tsf.Observe(0, 0, 1000000);
  tsf.Observe(100, 20000, 1000000);  // Ʈ = 3500
  ASSERT_EQ(tsf.Tau(), 3500u);
  EXPECT_TRUE(tsf.IsRecent(/*row_last_access=*/1000, /*now=*/4000));
  EXPECT_FALSE(tsf.IsRecent(/*row_last_access=*/1000, /*now=*/5000));
}

TEST_F(TsfTest, NoTauMeansNothingIsRecent) {
  TsfLearner tsf(config_);
  EXPECT_FALSE(tsf.IsRecent(99, 100));
}

TEST_F(TsfTest, ResetClearsState) {
  TsfLearner tsf(config_);
  tsf.Observe(0, 0, 1000000);
  tsf.Observe(100, 20000, 1000000);
  ASSERT_GT(tsf.Tau(), 0u);
  tsf.Reset();
  EXPECT_EQ(tsf.Tau(), 0u);
  EXPECT_EQ(tsf.GetStats().learn_cycles, 0);
}

// --- tuner ----------------------------------------------------------------------

class TunerTest : public ::testing::Test {
 protected:
  TunerTest() {
    config_.hysteresis_windows = 2;
    config_.min_cache_util_for_tuning = 0.50;
    config_.small_footprint_pct = 0.01;
    config_.min_new_rows_for_disable = 10;
    config_.disable_reuse_threshold = 0.5;
    config_.reenable_contention_threshold = 32;
    config_.reenable_reuse_factor = 2.0;
    part_ = std::make_unique<PartitionState>();
    part_->table_id = 1;
    part_->name = "t/0";
    tuner_ = std::make_unique<PartitionTuner>(&config_);
  }

  /// Applies one window of activity and runs the tuner.
  TuningReport Window(int64_t new_rows, int64_t reuse, int64_t contention,
                      int64_t cache_used = 800000,
                      int64_t cache_cap = 1000000) {
    part_->metrics.inserts_imrs.Add(new_rows);
    part_->metrics.reuse_select.Add(reuse);
    part_->metrics.page_contention.Add(contention);
    return tuner_->RunWindow({part_.get()}, cache_used, cache_cap);
  }

  IlmConfig config_;
  std::unique_ptr<PartitionState> part_;
  std::unique_ptr<PartitionTuner> tuner_;
};

TEST_F(TunerTest, FirstWindowOnlyBaselines) {
  TuningReport r = Window(100, 0, 0);
  EXPECT_EQ(r.partitions_evaluated, 0);
  EXPECT_TRUE(part_->imrs_enabled.load());
}

TEST_F(TunerTest, LowReuseDisablesAfterHysteresis) {
  part_->metrics.imrs_bytes.Add(50000);  // > 1% of 1 MB cache
  part_->metrics.imrs_rows.Add(100);
  Window(0, 0, 0);  // baseline
  TuningReport r1 = Window(/*new_rows=*/50, /*reuse=*/5, 0);
  EXPECT_EQ(r1.disable_votes, 1);
  EXPECT_TRUE(part_->imrs_enabled.load());  // hysteresis not yet met
  TuningReport r2 = Window(50, 5, 0);
  EXPECT_EQ(r2.partitions_disabled, 1);
  EXPECT_FALSE(part_->imrs_enabled.load());
  EXPECT_EQ(tuner_->total_disables(), 1);
}

TEST_F(TunerTest, HighReusePartitionStaysEnabled) {
  part_->metrics.imrs_bytes.Add(50000);
  part_->metrics.imrs_rows.Add(100);
  Window(0, 0, 0);
  for (int i = 0; i < 5; ++i) {
    Window(/*new_rows=*/50, /*reuse=*/500, 0);  // reuse rate 5.0
  }
  EXPECT_TRUE(part_->imrs_enabled.load());
  EXPECT_EQ(tuner_->total_disables(), 0);
}

TEST_F(TunerTest, SmallFootprintGuardPreventsDisable) {
  part_->metrics.imrs_bytes.Add(500);  // < 1% of cache
  part_->metrics.imrs_rows.Add(10);
  Window(0, 0, 0);
  for (int i = 0; i < 5; ++i) Window(50, 0, 0);
  EXPECT_TRUE(part_->imrs_enabled.load());
}

TEST_F(TunerTest, FreeCacheGuardPreventsDisable) {
  part_->metrics.imrs_bytes.Add(50000);
  part_->metrics.imrs_rows.Add(100);
  Window(0, 0, 0, /*cache_used=*/100000);  // 10% utilization
  for (int i = 0; i < 5; ++i) {
    Window(50, 0, 0, /*cache_used=*/100000);
  }
  EXPECT_TRUE(part_->imrs_enabled.load());
}

TEST_F(TunerTest, SlowGrowthGuardPreventsDisable) {
  part_->metrics.imrs_bytes.Add(50000);
  part_->metrics.imrs_rows.Add(100);
  Window(0, 0, 0);
  for (int i = 0; i < 5; ++i) {
    Window(/*new_rows=*/2, /*reuse=*/0, 0);  // below min_new_rows
  }
  EXPECT_TRUE(part_->imrs_enabled.load());
}

TEST_F(TunerTest, InterruptedVoteStreakResets) {
  part_->metrics.imrs_bytes.Add(50000);
  part_->metrics.imrs_rows.Add(100);
  Window(0, 0, 0);
  Window(50, 0, 0);    // vote 1
  Window(50, 500, 0);  // high reuse interrupts
  Window(50, 0, 0);    // vote 1 again
  EXPECT_TRUE(part_->imrs_enabled.load());
  Window(50, 0, 0);  // vote 2 -> flip
  EXPECT_FALSE(part_->imrs_enabled.load());
}

TEST_F(TunerTest, ContentionReenablesDisabledPartition) {
  part_->imrs_enabled.store(false);
  Window(0, 0, 0);  // baseline
  TuningReport r1 = Window(0, 0, /*contention=*/100);
  EXPECT_EQ(r1.enable_votes, 1);
  EXPECT_FALSE(part_->imrs_enabled.load());
  TuningReport r2 = Window(0, 0, 100);
  EXPECT_EQ(r2.partitions_reenabled, 1);
  EXPECT_TRUE(part_->imrs_enabled.load());
  EXPECT_EQ(tuner_->total_reenables(), 1);
}

TEST_F(TunerTest, ReuseGrowthReenablesDisabledPartition) {
  part_->metrics.imrs_bytes.Add(50000);
  part_->metrics.imrs_rows.Add(100);
  Window(0, 0, 0);
  // Disable with reuse-at-disable = 5.
  Window(50, 5, 0);
  Window(50, 5, 0);
  ASSERT_FALSE(part_->imrs_enabled.load());
  // Reuse doubles versus the disablement window.
  Window(0, 20, 0);
  Window(0, 20, 0);
  EXPECT_TRUE(part_->imrs_enabled.load());
}

// --- Pack ------------------------------------------------------------------------

/// Fake PackClient: "packs" rows by flagging them and reporting fixed byte
/// counts; can refuse everything to exercise requeueing.
class FakePackClient : public PackClient {
 public:
  PackBatchOutcome PackBatch(PartitionState* partition,
                             const std::vector<ImrsRow*>& batch,
                             std::vector<ImrsRow*>* requeue) override {
    (void)partition;
    PackBatchOutcome outcome;
    for (ImrsRow* row : batch) {
      if (refuse_all_ || fail_io_) {
        requeue->push_back(row);
        continue;
      }
      row->SetFlag(kRowPacked);
      packed_.push_back(row);
      outcome.bytes_released += bytes_per_row_;
    }
    outcome.io_error = fail_io_;
    ++batches_;
    return outcome;
  }

  std::vector<ImrsRow*> packed_;
  int batches_ = 0;
  int64_t bytes_per_row_ = 100;
  bool refuse_all_ = false;
  bool fail_io_ = false;
};

class PackTest : public ::testing::Test {
 protected:
  PackTest()
      : alloc_(1 << 20),
        tsf_(config_),
        pack_(&config_, &alloc_, &tsf_, &client_) {}

  static std::unique_ptr<PartitionState> MakePartition(uint32_t table_id,
                                                       int64_t bytes,
                                                       int64_t rows) {
    auto part = std::make_unique<PartitionState>();
    part->table_id = table_id;
    part->name = "t" + std::to_string(table_id);
    part->metrics.imrs_bytes.Add(bytes);
    part->metrics.imrs_rows.Add(rows);
    return part;
  }

  /// Fills the allocator to roughly the given utilization fraction.
  void FillAllocator(double fraction) {
    const auto target = static_cast<int64_t>(
        fraction * static_cast<double>(alloc_.CapacityBytes()));
    while (alloc_.InUseBytes() + 8192 < target) {
      void* p = alloc_.Allocate(8192 - 16);
      ASSERT_NE(p, nullptr);
    }
  }

  IlmConfig config_;
  FragmentAllocator alloc_;
  TsfLearner tsf_;
  FakePackClient client_;
  PackSubsystem pack_;
};

TEST_F(PackTest, LevelsFollowUtilization) {
  // steady = 0.70, aggressive line = 0.70 + 0.30 * 0.5 = 0.85.
  EXPECT_EQ(pack_.LevelForUtilization(0.10), PackLevel::kIdle);
  EXPECT_EQ(pack_.LevelForUtilization(0.69), PackLevel::kIdle);
  EXPECT_EQ(pack_.LevelForUtilization(0.70), PackLevel::kSteady);
  EXPECT_EQ(pack_.LevelForUtilization(0.84), PackLevel::kSteady);
  EXPECT_EQ(pack_.LevelForUtilization(0.86), PackLevel::kAggressive);
}

TEST_F(PackTest, IdleBelowThresholdPacksNothing) {
  auto part = MakePartition(1, 1000, 10);
  ImrsRow row;
  part->QueueFor(RowSource::kInserted).PushTail(&row);
  PackCycleResult r = pack_.RunPackCycle({part.get()}, 100);
  EXPECT_EQ(r.level, PackLevel::kIdle);
  EXPECT_EQ(r.rows_packed, 0);
  EXPECT_EQ(client_.batches_, 0);
}

TEST_F(PackTest, SteadyLevelPacksColdRows) {
  FillAllocator(0.75);
  auto part = MakePartition(1, alloc_.InUseBytes(), 50);
  std::vector<ImrsRow> rows(50);
  for (auto& r : rows) {
    part->QueueFor(RowSource::kInserted).PushTail(&r);
  }
  PackCycleResult r = pack_.RunPackCycle({part.get()}, /*now=*/1000);
  EXPECT_EQ(r.level, PackLevel::kSteady);
  EXPECT_GT(r.rows_packed, 0);
  EXPECT_GT(r.bytes_packed, 0);
  EXPECT_EQ(part->metrics.rows_packed.Load(), r.rows_packed);
}

TEST_F(PackTest, TsfProtectsRecentRowsInHighReusePartitions) {
  FillAllocator(0.75);
  // Learn a TSF (2% growth over 100 ticks with steady 0.70 -> 3500).
  tsf_.Observe(0, 0, alloc_.CapacityBytes());
  tsf_.Observe(100, alloc_.CapacityBytes() / 40, alloc_.CapacityBytes());
  ASSERT_GT(tsf_.Tau(), 0u);

  auto part = MakePartition(1, alloc_.InUseBytes(), 10);
  // High window reuse so the TSF applies (low_reuse_rate default 0.5).
  part->metrics.reuse_select.Add(1000);

  const uint64_t now = 4000;
  std::vector<ImrsRow> rows(20);
  for (size_t i = 0; i < rows.size(); ++i) {
    // Half recent (hot), half old (cold).
    rows[i].last_access_ts.store(i % 2 == 0 ? now - 10 : 1);
    part->QueueFor(RowSource::kInserted).PushTail(&rows[i]);
  }
  PackCycleResult r = pack_.RunPackCycle({part.get()}, now);
  EXPECT_EQ(r.rows_packed, 10);
  EXPECT_EQ(r.rows_skipped_hot, 10);
  // Hot rows were moved back to the tail, not lost.
  EXPECT_EQ(part->TotalQueuedRows(), 10);
}

TEST_F(PackTest, LowReusePartitionIgnoresTsf) {
  FillAllocator(0.75);
  tsf_.Observe(0, 0, alloc_.CapacityBytes());
  tsf_.Observe(100, alloc_.CapacityBytes() / 40, alloc_.CapacityBytes());

  auto part = MakePartition(1, alloc_.InUseBytes(), 10);
  // No reuse: the history-table pattern (Sec. VI.D.2).
  const uint64_t now = 4000;
  std::vector<ImrsRow> rows(10);
  for (auto& r : rows) {
    r.last_access_ts.store(now - 1);  // recently inserted...
    part->QueueFor(RowSource::kInserted).PushTail(&r);
  }
  PackCycleResult r = pack_.RunPackCycle({part.get()}, now);
  // ...but packed anyway because the partition's reuse rate is ~0.
  EXPECT_EQ(r.rows_packed, 10);
  EXPECT_EQ(r.rows_skipped_hot, 0);
}

TEST_F(PackTest, AggressiveLevelIgnoresHotness) {
  FillAllocator(0.90);
  tsf_.Observe(0, 0, alloc_.CapacityBytes());
  tsf_.Observe(100, alloc_.CapacityBytes() / 40, alloc_.CapacityBytes());

  auto part = MakePartition(1, alloc_.InUseBytes(), 10);
  part->metrics.reuse_select.Add(1000);
  const uint64_t now = 4000;
  std::vector<ImrsRow> rows(10);
  for (auto& r : rows) {
    r.last_access_ts.store(now - 1);  // all hot
    part->QueueFor(RowSource::kInserted).PushTail(&r);
  }
  PackCycleResult r = pack_.RunPackCycle({part.get()}, now);
  EXPECT_EQ(r.level, PackLevel::kAggressive);
  EXPECT_EQ(r.rows_packed, 10);
  EXPECT_EQ(r.rows_skipped_hot, 0);
}

TEST_F(PackTest, BypassActivatesWhenAggressiveCannotKeepUp) {
  FillAllocator(0.90);
  auto part = MakePartition(1, alloc_.InUseBytes(), 10);
  // No queued rows: utilization cannot drop.
  PackCycleResult r1 = pack_.RunPackCycle({part.get()}, 1);
  EXPECT_EQ(r1.level, PackLevel::kAggressive);
  EXPECT_FALSE(r1.bypass_active);  // needs growth across two cycles
  FillAllocator(0.95);
  PackCycleResult r2 = pack_.RunPackCycle({part.get()}, 2);
  EXPECT_TRUE(r2.bypass_active);
  EXPECT_TRUE(pack_.BypassActive());
  EXPECT_EQ(pack_.GetStats().bypass_activations, 1);
}

TEST_F(PackTest, ApportioningTaxesFatColdPartitions) {
  FillAllocator(0.75);
  // Hot partition: small footprint, high reuse. Cold: big footprint, none.
  auto hot = MakePartition(1, 1000, 10);
  hot->metrics.reuse_select.Add(10000);
  auto cold = MakePartition(2, 900000, 9000);

  std::vector<ImrsRow> hot_rows(10), cold_rows(200);
  const uint64_t now = 1000;
  for (auto& r : hot_rows) {
    r.table_id = 1;
    hot->QueueFor(RowSource::kInserted).PushTail(&r);
  }
  for (auto& r : cold_rows) {
    r.table_id = 2;
    cold->QueueFor(RowSource::kInserted).PushTail(&r);
  }
  PackCycleResult r = pack_.RunPackCycle({hot.get(), cold.get()}, now);
  EXPECT_GT(r.rows_packed, 0);
  int64_t hot_packed = 0, cold_packed = 0;
  for (ImrsRow* row : client_.packed_) {
    (row->table_id == 1 ? hot_packed : cold_packed)++;
  }
  // The packability index must send (almost) everything to the cold one.
  EXPECT_GT(cold_packed, 10 * std::max<int64_t>(hot_packed, 1));
}

TEST_F(PackTest, UniformApportioningSplitsEvenly) {
  config_.apportion_mode = ApportionMode::kUniform;
  FillAllocator(0.75);
  auto a = MakePartition(1, 500000, 10);
  a->metrics.reuse_select.Add(10000);  // would be protected under PI
  auto b = MakePartition(2, 400000, 10);
  std::vector<ImrsRow> rows_a(100), rows_b(100);
  for (auto& r : rows_a) {
    r.table_id = 1;
    a->QueueFor(RowSource::kInserted).PushTail(&r);
  }
  for (auto& r : rows_b) {
    r.table_id = 2;
    b->QueueFor(RowSource::kInserted).PushTail(&r);
  }
  pack_.RunPackCycle({a.get(), b.get()}, 1000);
  int64_t packed_a = 0, packed_b = 0;
  for (ImrsRow* row : client_.packed_) {
    (row->table_id == 1 ? packed_a : packed_b)++;
  }
  // Naive mode packs from both regardless of reuse.
  EXPECT_GT(packed_a, 0);
  EXPECT_GT(packed_b, 0);
}

TEST_F(PackTest, RefusedRowsAreRequeued) {
  FillAllocator(0.75);
  client_.refuse_all_ = true;
  auto part = MakePartition(1, alloc_.InUseBytes(), 10);
  std::vector<ImrsRow> rows(10);
  for (auto& r : rows) {
    part->QueueFor(RowSource::kInserted).PushTail(&r);
  }
  PackCycleResult r = pack_.RunPackCycle({part.get()}, 1000);
  EXPECT_EQ(r.rows_packed, 0);
  EXPECT_EQ(part->TotalQueuedRows(), 10);  // all back in the queue
}

TEST_F(PackTest, StaleQueueEntriesAreDropped) {
  FillAllocator(0.75);
  auto part = MakePartition(1, alloc_.InUseBytes(), 10);
  std::vector<ImrsRow> rows(4);
  rows[0].SetFlag(kRowPurged);
  rows[2].SetFlag(kRowPacked);
  for (auto& r : rows) {
    part->QueueFor(RowSource::kInserted).PushTail(&r);
  }
  pack_.RunPackCycle({part.get()}, 1000);
  // Only the two live rows reached the client.
  EXPECT_EQ(client_.packed_.size(), 2u);
}

TEST_F(PackTest, GlobalQueueModePacksAcrossPartitions) {
  config_.queue_mode = QueueMode::kSingleGlobal;
  FillAllocator(0.75);
  auto a = MakePartition(1, 500000, 100);
  auto b = MakePartition(2, 300000, 100);
  std::vector<ImrsRow> rows(60);
  for (size_t i = 0; i < rows.size(); ++i) {
    rows[i].table_id = static_cast<uint32_t>(i % 2) + 1;
    pack_.global_queue()->PushTail(&rows[i]);
  }
  PackCycleResult r = pack_.RunPackCycle({a.get(), b.get()}, 1000);
  EXPECT_GT(r.rows_packed, 0);
  EXPECT_GT(client_.batches_, 0);
}

// --- parameterized sweeps -----------------------------------------------------------

/// The pack-level boundaries hold for every steady threshold: idle below
/// the knob, steady up to threshold + (1-threshold)/2, aggressive above.
class PackLevelSweep : public ::testing::TestWithParam<int> {};

TEST_P(PackLevelSweep, BoundariesTrackThreshold) {
  IlmConfig config;
  config.steady_cache_pct = GetParam() / 100.0;
  FragmentAllocator alloc(1 << 20);
  TsfLearner tsf(config);
  FakePackClient client;
  PackSubsystem pack(&config, &alloc, &tsf, &client);

  const double steady = config.steady_cache_pct;
  const double aggressive = steady + (1.0 - steady) * 0.5;
  EXPECT_EQ(pack.LevelForUtilization(steady - 0.01), PackLevel::kIdle);
  EXPECT_EQ(pack.LevelForUtilization(steady + 0.001), PackLevel::kSteady);
  EXPECT_EQ(pack.LevelForUtilization(aggressive - 0.01), PackLevel::kSteady);
  EXPECT_EQ(pack.LevelForUtilization(aggressive + 0.01),
            PackLevel::kAggressive);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, PackLevelSweep,
                         ::testing::Values(50, 60, 70, 80, 90));

/// The tuner flips only after exactly `hysteresis_windows` consecutive
/// votes, for every configured hysteresis depth.
class TunerHysteresisSweep : public ::testing::TestWithParam<int> {};

TEST_P(TunerHysteresisSweep, FlipAfterExactlyNVotes) {
  const int h = GetParam();
  IlmConfig config;
  config.hysteresis_windows = h;
  config.min_new_rows_for_disable = 1;
  PartitionTuner tuner(&config);
  PartitionState part;
  part.metrics.imrs_bytes.Add(500000);  // big footprint
  part.metrics.imrs_rows.Add(100);

  auto window = [&](int64_t new_rows) {
    part.metrics.inserts_imrs.Add(new_rows);
    return tuner.RunWindow({&part}, /*cache_used=*/900000,
                           /*cache_capacity=*/1000000);
  };
  window(0);  // baseline
  for (int i = 1; i < h; ++i) {
    window(100);
    ASSERT_TRUE(part.imrs_enabled.load()) << "flipped after " << i << " of "
                                          << h << " votes";
  }
  window(100);
  EXPECT_FALSE(part.imrs_enabled.load());
  EXPECT_EQ(tuner.total_disables(), 1);
}

INSTANTIATE_TEST_SUITE_P(Depths, TunerHysteresisSweep,
                         ::testing::Values(1, 2, 3, 5, 8));

/// Ʈ = dt * P / p for every observation percentage.
class TsfFormulaSweep : public ::testing::TestWithParam<int> {};

TEST_P(TsfFormulaSweep, TauMatchesClosedForm) {
  const double p = GetParam() / 100.0;
  IlmConfig config;
  config.steady_cache_pct = 0.70;
  config.tsf_observe_pct = p;
  TsfLearner tsf(config);
  const int64_t cap = 1000000;
  tsf.Observe(1000, 0, cap);
  // Grow exactly p of capacity over 200 ticks.
  const int64_t grown = static_cast<int64_t>(p * cap);
  tsf.Observe(1200, grown, cap);
  const double expected = 200.0 * 0.70 / p;
  EXPECT_NEAR(static_cast<double>(tsf.Tau()), expected, expected * 0.01);
}

INSTANTIATE_TEST_SUITE_P(ObservePcts, TsfFormulaSweep,
                         ::testing::Values(1, 2, 5, 10));

/// Queue integrity under concurrent producers/consumers (GC threads push,
/// pack thread pops / re-tails).
TEST(IlmQueueConcurrency, PushPopRemainsCoherent) {
  IlmQueue queue;
  constexpr int kProducers = 2;
  constexpr int kRowsPerProducer = 4000;
  std::vector<std::unique_ptr<ImrsRow[]>> rows;
  for (int t = 0; t < kProducers; ++t) {
    rows.push_back(std::make_unique<ImrsRow[]>(kRowsPerProducer));
  }

  std::atomic<bool> done{false};
  std::atomic<int64_t> popped{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kProducers; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kRowsPerProducer; ++i) {
        queue.PushTail(&rows[static_cast<size_t>(t)][i]);
      }
    });
  }
  threads.emplace_back([&] {
    // Consumer: pop; occasionally push back (the hot-row re-tail path).
    uint64_t x = 12345;
    while (!done.load() || queue.Size() > 0) {
      ImrsRow* row = queue.PopHead();
      if (row == nullptr) continue;
      x = x * 6364136223846793005ull + 1;
      if ((x >> 33) % 8 == 0) {
        queue.PushTail(row);
      } else {
        popped.fetch_add(1);
      }
    }
  });
  for (int t = 0; t < kProducers; ++t) threads[static_cast<size_t>(t)].join();
  done.store(true);
  threads.back().join();
  EXPECT_EQ(popped.load(), kProducers * kRowsPerProducer);
  EXPECT_EQ(queue.Size(), 0);
}

// --- IlmManager -------------------------------------------------------------------

class IlmManagerTest : public ::testing::Test {
 protected:
  IlmManagerTest() : alloc_(1 << 20) {}
  FragmentAllocator alloc_;
  FakePackClient client_;
};

TEST_F(IlmManagerTest, RegistryFindsPartitions) {
  IlmManager ilm(IlmConfig{}, &alloc_, &client_);
  PartitionState* p = ilm.RegisterPartition(3, 1, "orders/1");
  EXPECT_EQ(ilm.FindPartition(3, 1), p);
  EXPECT_EQ(ilm.FindPartition(3, 2), nullptr);
  EXPECT_EQ(ilm.Partitions().size(), 1u);
}

TEST_F(IlmManagerTest, IlmOffAdmitsEverything) {
  IlmConfig config;
  config.ilm_enabled = false;
  IlmManager ilm(config, &alloc_, &client_);
  PartitionState* p = ilm.RegisterPartition(1, 0, "t/0");
  p->imrs_enabled.store(false);  // even a "disabled" partition
  EXPECT_TRUE(ilm.ShouldInsertToImrs(p));
  EXPECT_TRUE(ilm.ShouldMigrateOnUpdate(p, false, false));
  EXPECT_TRUE(ilm.ShouldCacheOnSelect(p, false));
}

TEST_F(IlmManagerTest, DisabledPartitionRejectsAdmission) {
  IlmManager ilm(IlmConfig{}, &alloc_, &client_);
  PartitionState* p = ilm.RegisterPartition(1, 0, "t/0");
  EXPECT_TRUE(ilm.ShouldInsertToImrs(p));
  p->imrs_enabled.store(false);
  EXPECT_FALSE(ilm.ShouldInsertToImrs(p));
  EXPECT_FALSE(ilm.ShouldMigrateOnUpdate(p, true, true));
  EXPECT_FALSE(ilm.ShouldCacheOnSelect(p, true));
}

TEST_F(IlmManagerTest, MigrationNeedsUniqueAccessOrContention) {
  IlmManager ilm(IlmConfig{}, &alloc_, &client_);
  PartitionState* p = ilm.RegisterPartition(1, 0, "t/0");
  EXPECT_TRUE(ilm.ShouldMigrateOnUpdate(p, true, false));
  EXPECT_TRUE(ilm.ShouldMigrateOnUpdate(p, false, true));
  EXPECT_FALSE(ilm.ShouldMigrateOnUpdate(p, false, false));
}

TEST_F(IlmManagerTest, SelectCachingToggle) {
  IlmConfig config;
  config.select_caching = false;
  IlmManager ilm(config, &alloc_, &client_);
  PartitionState* p = ilm.RegisterPartition(1, 0, "t/0");
  EXPECT_FALSE(ilm.ShouldCacheOnSelect(p, true));
}

TEST_F(IlmManagerTest, ForcePageStoreOverridesEverything) {
  IlmConfig config;
  config.ilm_enabled = false;  // ILM_OFF would admit everything...
  IlmManager ilm(config, &alloc_, &client_);
  PartitionState* p = ilm.RegisterPartition(1, 0, "t/0");
  ilm.SetForcePageStore(true);  // ...except during bulk load
  EXPECT_FALSE(ilm.ShouldInsertToImrs(p));
  EXPECT_FALSE(ilm.ShouldMigrateOnUpdate(p, true, true));
  ilm.SetForcePageStore(false);
  EXPECT_TRUE(ilm.ShouldInsertToImrs(p));
}

TEST_F(IlmManagerTest, EnqueueRoutesToPartitionQueueBySource) {
  IlmManager ilm(IlmConfig{}, &alloc_, &client_);
  PartitionState* p = ilm.RegisterPartition(1, 0, "t/0");
  ImrsRow inserted, cached;
  inserted.table_id = cached.table_id = 1;
  inserted.source = RowSource::kInserted;
  cached.source = RowSource::kCached;
  ilm.EnqueueRow(&inserted);
  ilm.EnqueueRow(&cached);
  EXPECT_EQ(p->QueueFor(RowSource::kInserted).Size(), 1);
  EXPECT_EQ(p->QueueFor(RowSource::kCached).Size(), 1);
  EXPECT_EQ(p->QueueFor(RowSource::kMigrated).Size(), 0);
  ilm.UnlinkRow(&inserted);
  EXPECT_EQ(p->QueueFor(RowSource::kInserted).Size(), 0);
}

TEST_F(IlmManagerTest, GlobalQueueModeRoutesToGlobalQueue) {
  IlmConfig config;
  config.queue_mode = QueueMode::kSingleGlobal;
  IlmManager ilm(config, &alloc_, &client_);
  ilm.RegisterPartition(1, 0, "t/0");
  ImrsRow row;
  row.table_id = 1;
  ilm.EnqueueRow(&row);
  EXPECT_EQ(ilm.pack()->global_queue()->Size(), 1);
}

TEST_F(IlmManagerTest, BackgroundTickRunsTuningOnWindowBoundaries) {
  IlmConfig config;
  config.tuning_window_txns = 100;
  IlmManager ilm(config, &alloc_, &client_);
  PartitionState* p = ilm.RegisterPartition(1, 0, "t/0");
  ilm.BackgroundTick(100);  // first due window: baseline snapshot taken
  EXPECT_TRUE(p->tuner.have_last_window);
  const MetricsSnapshot baseline = p->tuner.last_window;
  ilm.BackgroundTick(150);  // within the window: no tuning
  p->metrics.reuse_select.Add(5);
  EXPECT_EQ(p->tuner.last_window.reuse_select, baseline.reuse_select);
  ilm.BackgroundTick(200);  // next window: snapshot advances
  EXPECT_EQ(p->tuner.last_window.reuse_select, baseline.reuse_select + 5);
}

}  // namespace
}  // namespace btrim
