// TSA negative test: acquiring a mutex on one path and returning without
// releasing it. MUST NOT compile under -Werror=thread-safety (warning:
// "mutex 'mu_' is still held at the end of function").

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Leaky {
 public:
  void TakeAndForget(bool flag) {
    mu_.lock();
    if (flag) return;  // leaks the lock on this path
    mu_.unlock();
  }

 private:
  btrim::Mutex mu_;
};

}  // namespace

int main() {
  Leaky l;
  l.TakeAndForget(false);
  return 0;
}
