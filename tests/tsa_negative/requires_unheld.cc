// TSA negative test: calling a BTRIM_REQUIRES function without holding the
// required mutex. MUST NOT compile under -Werror=thread-safety (warning:
// "calling function 'AppendLocked' requires holding mutex 'mu_'").

#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Buffer {
 public:
  void Append(int v) {
    AppendLocked(v);  // missing MutexGuard guard(mu_)
  }

 private:
  void AppendLocked(int v) BTRIM_REQUIRES(mu_) { items_.push_back(v); }

  btrim::Mutex mu_;
  std::vector<int> items_ BTRIM_GUARDED_BY(mu_);
};

}  // namespace

int main() {
  Buffer b;
  b.Append(1);
  return 0;
}
