// TSA positive control: correct guard discipline over annotated members.
// MUST compile cleanly under -Werror=thread-safety — this proves the
// harness actually builds the snippets (so the WILL_FAIL negatives above
// are failing for the right reason, not because of a broken include path
// or toolchain).

#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Buffer {
 public:
  void Append(int v) BTRIM_EXCLUDES(mu_) {
    btrim::MutexGuard guard(mu_);
    AppendLocked(v);
  }

  int Size() const BTRIM_EXCLUDES(mu_) {
    btrim::MutexGuard guard(mu_);
    return static_cast<int>(items_.size());
  }

 private:
  void AppendLocked(int v) BTRIM_REQUIRES(mu_) { items_.push_back(v); }

  mutable btrim::Mutex mu_;
  std::vector<int> items_ BTRIM_GUARDED_BY(mu_);
};

}  // namespace

int main() {
  Buffer b;
  b.Append(1);
  b.Append(2);
  return b.Size() == 2 ? 0 : 1;
}
