// TSA negative test: writing a BTRIM_GUARDED_BY member without holding its
// mutex. MUST NOT compile under -Werror=thread-safety (warning:
// "writing variable 'value_' requires holding mutex 'mu_' exclusively").

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Counter {
 public:
  void Bump() { ++value_; }  // missing MutexGuard guard(mu_)

 private:
  btrim::Mutex mu_;
  int value_ BTRIM_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Bump();
  return 0;
}
