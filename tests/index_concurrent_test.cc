// Concurrency tests for the optimistic-lock-coupling B+Tree: multi-writer
// split storms validated against a shadow map, readers scanning while the
// tree changes shape underneath them, and the epoch-based reclamation of
// unlinked pages. Run under tsan + the lock-order validator in CI.

#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/coding.h"
#include "common/lock_order.h"
#include "common/random.h"
#include "index/btree.h"
#include "index/epoch.h"
#include "page/device.h"

namespace btrim {
namespace {

std::string IntKey(uint64_t v) {
  std::string k;
  PutBigEndian64(&k, v);
  return k;
}

class BTreeConcurrentTest : public ::testing::Test {
 protected:
  BTreeConcurrentTest() : cache_(2048), tree_(1, &cache_, /*unique=*/true) {
    cache_.AttachDevice(1, &dev_);
    EXPECT_TRUE(tree_.Create().ok());
  }

  ~BTreeConcurrentTest() override {
#if defined(BTRIM_LOCK_ORDER_CHECKS)
    EXPECT_EQ(LockOrderValidator::Global()->ViolationCount(), 0)
        << LockOrderValidator::Global()->Report();
#endif
  }

  MemDevice dev_;
  BufferCache cache_;
  BTree tree_;
};

TEST_F(BTreeConcurrentTest, ParallelWritersDisjointRanges) {
  // N writers insert disjoint key ranges concurrently, splitting leaves
  // (and the root, repeatedly) under each other. The final tree must hold
  // exactly the union.
  constexpr int kWriters = 8;
  constexpr uint64_t kPerWriter = 4000;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        const uint64_t key = static_cast<uint64_t>(w) * kPerWriter + i;
        ASSERT_TRUE(tree_.Insert(IntKey(key), key).ok());
      }
    });
  }
  for (auto& t : writers) t.join();

  for (uint64_t k = 0; k < kWriters * kPerWriter; ++k) {
    Result<uint64_t> v = tree_.Search(IntKey(k));
    ASSERT_TRUE(v.ok()) << "key " << k;
    ASSERT_EQ(*v, k);
  }
  std::vector<std::pair<std::string, uint64_t>> all;
  ASSERT_TRUE(tree_.Scan(IntKey(0), Slice(), 0, &all).ok());
  ASSERT_EQ(all.size(), kWriters * kPerWriter);
  for (size_t i = 1; i < all.size(); ++i) {
    ASSERT_LT(all[i - 1].first, all[i].first) << "scan out of order at " << i;
  }
  EXPECT_GT(tree_.GetStats().splits, 0);
}

TEST_F(BTreeConcurrentTest, ReadersVsSplittingWriters) {
  // Writers hammer interleaved hot ranges while readers point-read and
  // range-scan. Every committed key must be found with its exact value;
  // scans must stay sorted and never duplicate within a pass.
  constexpr int kWriters = 4;
  constexpr int kReaders = 4;
  constexpr uint64_t kPerWriter = 3000;
  std::atomic<uint64_t> committed[kWriters];
  for (auto& c : committed) c.store(0);
  std::atomic<bool> stop{false};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        // Interleave writers across the key space so leaves are shared.
        const uint64_t key = i * kWriters + static_cast<uint64_t>(w);
        ASSERT_TRUE(tree_.Insert(IntKey(key), key * 7).ok());
        committed[w].store(i + 1, std::memory_order_release);
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      Random rng(1234u + static_cast<uint32_t>(r));
      while (!stop.load(std::memory_order_acquire)) {
        // Point-read a key guaranteed committed.
        for (int w = 0; w < kWriters; ++w) {
          const uint64_t done = committed[w].load(std::memory_order_acquire);
          if (done == 0) continue;
          const uint64_t i = rng.Next() % done;
          const uint64_t key = i * kWriters + static_cast<uint64_t>(w);
          Result<uint64_t> v = tree_.Search(IntKey(key));
          ASSERT_TRUE(v.ok()) << "committed key " << key << " not found";
          ASSERT_EQ(*v, key * 7);
        }
        // Bounded scan: sorted, unique, values consistent.
        const uint64_t lo = rng.Next() % (kPerWriter * kWriters);
        std::vector<std::pair<std::string, uint64_t>> out;
        ASSERT_TRUE(tree_.Scan(IntKey(lo), IntKey(lo + 512), 0, &out).ok());
        for (size_t i = 0; i < out.size(); ++i) {
          if (i > 0) ASSERT_LT(out[i - 1].first, out[i].first);
          ASSERT_EQ(out[i].second, GetBigEndian64(out[i].first.data()) * 7);
        }
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) threads[w].join();
  stop.store(true, std::memory_order_release);
  for (int r = 0; r < kReaders; ++r) threads[kWriters + r].join();

  std::vector<std::pair<std::string, uint64_t>> all;
  ASSERT_TRUE(tree_.Scan(IntKey(0), Slice(), 0, &all).ok());
  EXPECT_EQ(all.size(), kWriters * kPerWriter);
}

TEST_F(BTreeConcurrentTest, MixedInsertDeleteSearchTorture) {
  // Each thread owns a key stripe and randomly inserts/deletes/reads
  // within it, tracking a private shadow map; cross-thread interference
  // comes only from shared pages. Final state must equal the union of the
  // shadows.
  constexpr int kThreads = 6;
  constexpr int kOpsPerThread = 8000;
  constexpr uint64_t kStripe = 1000;
  std::vector<std::map<uint64_t, uint64_t>> shadows(kThreads);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Random rng(99u + static_cast<uint32_t>(t));
      auto& shadow = shadows[t];
      for (int op = 0; op < kOpsPerThread; ++op) {
        const uint64_t key =
            static_cast<uint64_t>(t) * kStripe + rng.Next() % kStripe;
        const uint32_t dice = rng.Next() % 100;
        if (dice < 50) {
          Status s = tree_.Insert(IntKey(key), key);
          if (shadow.count(key)) {
            ASSERT_TRUE(s.IsAlreadyExists());
          } else {
            ASSERT_TRUE(s.ok());
            shadow[key] = key;
          }
        } else if (dice < 75) {
          Status s = tree_.Delete(IntKey(key));
          if (shadow.erase(key)) {
            ASSERT_TRUE(s.ok());
          } else {
            ASSERT_TRUE(s.IsNotFound());
          }
        } else {
          Result<uint64_t> v = tree_.Search(IntKey(key));
          if (shadow.count(key)) {
            ASSERT_TRUE(v.ok());
            ASSERT_EQ(*v, key);
          } else {
            ASSERT_TRUE(v.status().IsNotFound());
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  std::map<std::string, uint64_t> expected;
  for (const auto& shadow : shadows) {
    for (const auto& [k, v] : shadow) expected[IntKey(k)] = v;
  }
  std::vector<std::pair<std::string, uint64_t>> all;
  ASSERT_TRUE(tree_.Scan(IntKey(0), Slice(), 0, &all).ok());
  ASSERT_EQ(all.size(), expected.size());
  size_t i = 0;
  for (const auto& [k, v] : expected) {
    ASSERT_EQ(all[i].first, k);
    ASSERT_EQ(all[i].second, v);
    ++i;
  }
}

TEST_F(BTreeConcurrentTest, EpochPinBlocksPageReclamation) {
  // An unlinked page must not return to the free list while any reader
  // epoch that could still reach it is active.
  for (uint64_t k = 0; k < 2000; ++k) {
    ASSERT_TRUE(tree_.Insert(IntKey(k), k).ok());
  }
  {
    // Pin an epoch as a concurrent descent would, then empty leaves.
    IndexEpochGuard pin;
    for (uint64_t k = 2000; k-- > 0;) {
      ASSERT_TRUE(tree_.Delete(IntKey(k)).ok());
    }
    const BTreeStats mid = tree_.GetStats();
    ASSERT_GT(mid.pages_retired, 0) << "emptied leaves should retire";
    EXPECT_EQ(tree_.DrainRetired(), 0)
        << "retired pages reclaimed under a live epoch pin";
    EXPECT_EQ(tree_.GetStats().pages_reclaimed, 0);
  }
  const BTreeStats before = tree_.GetStats();
  EXPECT_EQ(tree_.DrainRetired(), before.pages_retired);
  EXPECT_EQ(tree_.GetStats().pages_reclaimed, before.pages_retired);

  // Re-inserting reuses reclaimed page numbers instead of growing the
  // file (small slack: the rebuilt leaf boundaries need not line up
  // exactly with the original ones).
  const int64_t allocated_before = tree_.GetStats().pages_allocated;
  for (uint64_t k = 0; k < 2000; ++k) {
    ASSERT_TRUE(tree_.Insert(IntKey(k), k).ok());
  }
  EXPECT_GT(tree_.GetStats().pages_reused, 0);
  EXPECT_LE(tree_.GetStats().pages_allocated, allocated_before + 4)
      << "reinsert should be served almost entirely from the free list";
}

TEST_F(BTreeConcurrentTest, ConcurrentDeletersAndScanners) {
  // Scanners hop right-sibling links while deleters unlink emptied leaves.
  // Scans may restart internally but must never crash, duplicate, or go
  // out of order.
  constexpr uint64_t kKeys = 20000;
  for (uint64_t k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(tree_.Insert(IntKey(k), k).ok());
  }
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int d = 0; d < 3; ++d) {
    threads.emplace_back([&, d] {
      // Each deleter owns keys == d (mod 3); deletes right-to-left to empty
      // whole leaves fast.
      for (uint64_t k = kKeys; k-- > 0;) {
        if (k % 3 != static_cast<uint64_t>(d)) continue;
        ASSERT_TRUE(tree_.Delete(IntKey(k)).ok());
      }
    });
  }
  for (int r = 0; r < 3; ++r) {
    threads.emplace_back([&, r] {
      Random rng(7u + static_cast<uint32_t>(r));
      while (!stop.load(std::memory_order_acquire)) {
        const uint64_t lo = rng.Next() % kKeys;
        std::vector<std::pair<std::string, uint64_t>> out;
        ASSERT_TRUE(tree_.Scan(IntKey(lo), IntKey(lo + 2048), 0, &out).ok());
        for (size_t i = 1; i < out.size(); ++i) {
          ASSERT_LT(out[i - 1].first, out[i].first);
        }
      }
    });
  }
  for (int d = 0; d < 3; ++d) threads[d].join();
  stop.store(true, std::memory_order_release);
  for (int r = 0; r < 3; ++r) threads[3 + r].join();

  std::vector<std::pair<std::string, uint64_t>> rest;
  ASSERT_TRUE(tree_.Scan(IntKey(0), Slice(), 0, &rest).ok());
  EXPECT_TRUE(rest.empty());
  const BTreeStats s = tree_.GetStats();
  EXPECT_GT(s.pages_retired, 0);
}

TEST_F(BTreeConcurrentTest, ScanReservesWithoutQuadraticGrowth) {
  // The leaf-count-driven reserve must respect capacity doubling: total
  // capacity growth events stay logarithmic in result size.
  for (uint64_t k = 0; k < 50000; ++k) {
    ASSERT_TRUE(tree_.Insert(IntKey(k), k).ok());
  }
  std::vector<std::pair<std::string, uint64_t>> out;
  ASSERT_TRUE(tree_.Scan(IntKey(0), Slice(), 0, &out).ok());
  ASSERT_EQ(out.size(), 50000u);
  EXPECT_LE(out.capacity(), out.size() * 4);
  for (size_t i = 1; i < out.size(); ++i) {
    ASSERT_LT(out[i - 1].first, out[i].first);
  }
}

}  // namespace
}  // namespace btrim
