// Engine-level tests: record codec, key encoding, transactional CRUD,
// snapshot isolation, hot-data admission (migration / select caching),
// Pack relocation, and GC purge — all through the public Database API.

#include <thread>

#include <gtest/gtest.h>

#include "engine/database.h"
#include "engine/stats_printer.h"

namespace btrim {
namespace {

// --- record codec -----------------------------------------------------------------

Schema TestSchema() {
  return Schema({
      Column::Int64("id"),
      Column::Int32("count"),
      Column::Double("price"),
      Column::String("name", 32),
  });
}

TEST(RecordCodecTest, BuildAndViewRoundTrip) {
  Schema schema = TestSchema();
  RecordBuilder b(&schema);
  b.AddInt64(-42).AddInt32(7).AddDouble(3.25).AddString("widget");
  RecordView v(&schema, b.Finish());
  ASSERT_TRUE(v.valid());
  EXPECT_EQ(v.GetInt64(0), -42);
  EXPECT_EQ(v.GetInt32(1), 7);
  EXPECT_DOUBLE_EQ(v.GetDouble(2), 3.25);
  EXPECT_EQ(v.GetString(3).ToString(), "widget");
  EXPECT_EQ(v.GetInt(0), -42);
  EXPECT_EQ(v.GetInt(1), 7);
}

TEST(RecordCodecTest, EmptyStringsAndExtremes) {
  Schema schema = TestSchema();
  RecordBuilder b(&schema);
  b.AddInt64(INT64_MIN).AddInt32(INT32_MAX).AddDouble(-0.0).AddString("");
  RecordView v(&schema, b.Finish());
  ASSERT_TRUE(v.valid());
  EXPECT_EQ(v.GetInt64(0), INT64_MIN);
  EXPECT_EQ(v.GetInt32(1), INT32_MAX);
  EXPECT_EQ(v.GetString(3).size(), 0u);
}

TEST(RecordCodecTest, TruncatedRecordIsInvalid) {
  Schema schema = TestSchema();
  RecordBuilder b(&schema);
  b.AddInt64(1).AddInt32(2).AddDouble(3).AddString("x");
  std::string data = b.Finish().ToString();
  RecordView v(&schema, Slice(data.data(), data.size() - 2));
  EXPECT_FALSE(v.valid());
}

TEST(RecordCodecTest, EditorModifiesSelectedColumns) {
  Schema schema = TestSchema();
  RecordBuilder b(&schema);
  b.AddInt64(1).AddInt32(2).AddDouble(3.5).AddString("before");
  RecordEditor e(&schema, b.Finish());
  ASSERT_TRUE(e.valid());
  e.SetInt32(1, 99);
  e.SetString(3, "after");
  RecordView v(&schema, Slice(e.Encode()));
  // In std::string form since Encode returns a temporary otherwise.
  std::string encoded = e.Encode();
  RecordView v2(&schema, Slice(encoded));
  ASSERT_TRUE(v2.valid());
  EXPECT_EQ(v2.GetInt64(0), 1);       // untouched
  EXPECT_EQ(v2.GetInt32(1), 99);      // modified
  EXPECT_DOUBLE_EQ(v2.GetDouble(2), 3.5);
  EXPECT_EQ(v2.GetString(3).ToString(), "after");
  (void)v;
}

TEST(KeyEncoderTest, IntKeysSortNumerically) {
  Schema schema = TestSchema();
  KeyEncoder enc(&schema, {0});
  // Includes negatives: the sign-bias must order them before positives.
  const std::vector<int64_t> values = {-1000, -1, 0, 1, 42, 1000000};
  std::string prev;
  for (size_t i = 0; i < values.size(); ++i) {
    std::string key = enc.KeyForInts({values[i]});
    if (i > 0) {
      EXPECT_LT(prev, key) << "at " << values[i];
    }
    prev = key;
  }
}

TEST(KeyEncoderTest, CompositeKeyOrdersBySignificance) {
  Schema schema = Schema({Column::Int32("a"), Column::Int32("b")});
  KeyEncoder enc(&schema, {0, 1});
  EXPECT_LT(enc.KeyForInts({1, 99}), enc.KeyForInts({2, 0}));
  EXPECT_LT(enc.KeyForInts({1, 1}), enc.KeyForInts({1, 2}));
}

TEST(KeyEncoderTest, KeyForRecordMatchesKeyForInts) {
  Schema schema = TestSchema();
  KeyEncoder enc(&schema, {0, 1});
  RecordBuilder b(&schema);
  b.AddInt64(123).AddInt32(45).AddDouble(0).AddString("x");
  EXPECT_EQ(enc.KeyForRecord(b.Finish()), enc.KeyForInts({123, 45}));
}

TEST(KeyEncoderTest, PaddedStringsAlignCompositeKeys) {
  Schema schema = Schema({Column::String("s", 8), Column::Int32("n")});
  KeyEncoder enc(&schema, {0, 1});
  RecordBuilder b1(&schema);
  b1.AddString("ab").AddInt32(2);
  RecordBuilder b2(&schema);
  b2.AddString("ab").AddInt32(10);
  // Same string, different int: int decides.
  EXPECT_LT(enc.KeyForRecord(b1.Finish()), enc.KeyForRecord(b2.Finish()));
  EXPECT_EQ(enc.KeyForRecord(b1.Finish()).size(), 8u + 8u);
}

// --- Database fixture -----------------------------------------------------------

class EngineTest : public ::testing::Test {
 protected:
  void Open(DatabaseOptions options = {}) {
    options.buffer_cache_frames = 512;
    if (options.imrs_cache_bytes == (256ull << 20)) {
      options.imrs_cache_bytes = 8 << 20;
    }
    options.lock_timeout_ms = 100;
    Result<std::unique_ptr<Database>> opened = Database::Open(options);
    ASSERT_TRUE(opened.ok());
    db_ = std::move(*opened);

    TableOptions topt;
    topt.name = "kv";
    topt.schema = Schema({
        Column::Int64("id"),
        Column::Int64("group_id"),
        Column::String("value", 64),
    });
    topt.primary_key = {0};
    topt.secondary_indexes.push_back(IndexDef{"by_group", {1, 0}, false});
    Result<Table*> created = db_->CreateTable(topt);
    ASSERT_TRUE(created.ok());
    table_ = *created;
  }

  std::string Key(int64_t id) { return table_->pk_encoder().KeyForInts({id}); }

  std::string Record(int64_t id, int64_t group, const std::string& value) {
    RecordBuilder b(&table_->schema());
    b.AddInt64(id).AddInt64(group).AddString(value);
    return b.Finish().ToString();
  }

  Status InsertRow(int64_t id, int64_t group, const std::string& value,
                   Transaction* txn = nullptr) {
    if (txn != nullptr) {
      return db_->Insert(txn, table_, Record(id, group, value));
    }
    auto t = db_->Begin();
    Status s = db_->Insert(t.get(), table_, Record(id, group, value));
    if (!s.ok()) {
      Status a = db_->Abort(t.get());
      (void)a;
      return s;
    }
    return db_->Commit(t.get());
  }

  /// Reads the value column of `id` in a fresh transaction.
  Result<std::string> ReadValue(int64_t id) {
    auto txn = db_->Begin();
    std::string row;
    Status s = db_->SelectByKey(txn.get(), table_, Key(id), &row);
    Status c = db_->Commit(txn.get());
    (void)c;
    if (!s.ok()) return s;
    RecordView v(&table_->schema(), Slice(row));
    return v.GetString(2).ToString();
  }

  Status UpdateValue(int64_t id, const std::string& value,
                     Transaction* txn = nullptr) {
    auto mutate = [&](std::string* payload) {
      RecordEditor e(&table_->schema(), Slice(*payload));
      e.SetString(2, value);
      *payload = e.Encode();
    };
    if (txn != nullptr) return db_->Update(txn, table_, Key(id), mutate);
    auto t = db_->Begin();
    Status s = db_->Update(t.get(), table_, Key(id), mutate);
    if (!s.ok()) {
      Status a = db_->Abort(t.get());
      (void)a;
      return s;
    }
    return db_->Commit(t.get());
  }

  std::unique_ptr<Database> db_;
  Table* table_ = nullptr;
};

// --- CRUD -------------------------------------------------------------------------

TEST_F(EngineTest, InsertSelectRoundTrip) {
  Open();
  ASSERT_TRUE(InsertRow(1, 10, "hello").ok());
  Result<std::string> v = ReadValue(1);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "hello");
}

TEST_F(EngineTest, SelectMissingIsNotFound) {
  Open();
  EXPECT_TRUE(ReadValue(404).status().IsNotFound());
}

TEST_F(EngineTest, DuplicatePrimaryKeyRejected) {
  Open();
  ASSERT_TRUE(InsertRow(1, 10, "first").ok());
  Status s = InsertRow(1, 11, "second");
  EXPECT_TRUE(s.IsAlreadyExists());
  EXPECT_EQ(*ReadValue(1), "first");
}

TEST_F(EngineTest, UpdateRewritesRow) {
  Open();
  ASSERT_TRUE(InsertRow(1, 10, "v1").ok());
  ASSERT_TRUE(UpdateValue(1, "v2").ok());
  EXPECT_EQ(*ReadValue(1), "v2");
  ASSERT_TRUE(UpdateValue(1, "v3").ok());
  EXPECT_EQ(*ReadValue(1), "v3");
}

TEST_F(EngineTest, UpdateMissingIsNotFound) {
  Open();
  EXPECT_TRUE(UpdateValue(404, "x").IsNotFound());
}

TEST_F(EngineTest, DeleteRemovesRow) {
  Open();
  ASSERT_TRUE(InsertRow(1, 10, "doomed").ok());
  auto txn = db_->Begin();
  ASSERT_TRUE(db_->Delete(txn.get(), table_, Key(1)).ok());
  ASSERT_TRUE(db_->Commit(txn.get()).ok());
  EXPECT_TRUE(ReadValue(1).status().IsNotFound());
  // Double delete: not found.
  auto txn2 = db_->Begin();
  EXPECT_TRUE(db_->Delete(txn2.get(), table_, Key(1)).IsNotFound());
  ASSERT_TRUE(db_->Abort(txn2.get()).ok());
}

TEST_F(EngineTest, MultiRowTransactionIsAtomic) {
  Open();
  auto txn = db_->Begin();
  for (int64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(InsertRow(i, 1, "batch", txn.get()).ok());
  }
  // Nothing visible before commit.
  EXPECT_TRUE(ReadValue(5).status().IsNotFound());
  ASSERT_TRUE(db_->Commit(txn.get()).ok());
  EXPECT_TRUE(ReadValue(5).ok());
}

// --- rollback -----------------------------------------------------------------------

TEST_F(EngineTest, AbortedInsertLeavesNoTrace) {
  Open();
  auto txn = db_->Begin();
  ASSERT_TRUE(InsertRow(1, 10, "ghost", txn.get()).ok());
  ASSERT_TRUE(db_->Abort(txn.get()).ok());
  EXPECT_TRUE(ReadValue(1).status().IsNotFound());
  // Key space is fully released: same key usable again.
  ASSERT_TRUE(InsertRow(1, 10, "real").ok());
  EXPECT_EQ(*ReadValue(1), "real");
}

TEST_F(EngineTest, AbortedUpdateRestoresOldValue) {
  Open();
  ASSERT_TRUE(InsertRow(1, 10, "committed").ok());
  auto txn = db_->Begin();
  ASSERT_TRUE(UpdateValue(1, "uncommitted", txn.get()).ok());
  ASSERT_TRUE(db_->Abort(txn.get()).ok());
  EXPECT_EQ(*ReadValue(1), "committed");
}

TEST_F(EngineTest, AbortedDeleteRestoresRow) {
  Open();
  ASSERT_TRUE(InsertRow(1, 10, "survivor").ok());
  auto txn = db_->Begin();
  ASSERT_TRUE(db_->Delete(txn.get(), table_, Key(1)).ok());
  ASSERT_TRUE(db_->Abort(txn.get()).ok());
  EXPECT_EQ(*ReadValue(1), "survivor");
}

TEST_F(EngineTest, PageStorePathRollbacks) {
  Open();
  // Route everything to the page store (bulk-load mode).
  db_->ilm()->SetForcePageStore(true);
  ASSERT_TRUE(InsertRow(1, 10, "ps-v1").ok());
  EXPECT_EQ(db_->rid_map()->Size(), 0);  // truly page-store resident

  auto txn = db_->Begin();
  ASSERT_TRUE(UpdateValue(1, "ps-v2", txn.get()).ok());
  ASSERT_TRUE(db_->Abort(txn.get()).ok());
  EXPECT_EQ(*ReadValue(1), "ps-v1");

  auto txn2 = db_->Begin();
  ASSERT_TRUE(db_->Delete(txn2.get(), table_, Key(1)).ok());
  ASSERT_TRUE(db_->Abort(txn2.get()).ok());
  EXPECT_EQ(*ReadValue(1), "ps-v1");

  auto txn3 = db_->Begin();
  ASSERT_TRUE(InsertRow(2, 10, "ps-ghost", txn3.get()).ok());
  ASSERT_TRUE(db_->Abort(txn3.get()).ok());
  EXPECT_TRUE(ReadValue(2).status().IsNotFound());
}

// --- snapshot isolation ----------------------------------------------------------------

TEST_F(EngineTest, UncommittedWritesInvisibleToOthers) {
  Open();
  ASSERT_TRUE(InsertRow(1, 10, "old").ok());
  auto writer = db_->Begin();
  ASSERT_TRUE(UpdateValue(1, "new", writer.get()).ok());

  auto reader = db_->Begin();
  std::string row;
  ASSERT_TRUE(db_->SelectByKey(reader.get(), table_, Key(1), &row).ok());
  RecordView v(&table_->schema(), Slice(row));
  EXPECT_EQ(v.GetString(2).ToString(), "old");
  ASSERT_TRUE(db_->Commit(reader.get()).ok());
  ASSERT_TRUE(db_->Commit(writer.get()).ok());
}

TEST_F(EngineTest, SnapshotReadsAreStableAcrossConcurrentCommit) {
  Open();
  ASSERT_TRUE(InsertRow(1, 10, "v1").ok());
  auto reader = db_->Begin();  // snapshot before the update commits

  ASSERT_TRUE(UpdateValue(1, "v2").ok());  // separate committed txn

  std::string row;
  ASSERT_TRUE(db_->SelectByKey(reader.get(), table_, Key(1), &row).ok());
  RecordView v(&table_->schema(), Slice(row));
  EXPECT_EQ(v.GetString(2).ToString(), "v1");  // still the old version
  ASSERT_TRUE(db_->Commit(reader.get()).ok());

  EXPECT_EQ(*ReadValue(1), "v2");  // new snapshot sees the update
}

TEST_F(EngineTest, TransactionSeesItsOwnWrites) {
  Open();
  auto txn = db_->Begin();
  ASSERT_TRUE(InsertRow(1, 10, "mine", txn.get()).ok());
  std::string row;
  ASSERT_TRUE(db_->SelectByKey(txn.get(), table_, Key(1), &row).ok());
  RecordView v(&table_->schema(), Slice(row));
  EXPECT_EQ(v.GetString(2).ToString(), "mine");

  ASSERT_TRUE(UpdateValue(1, "mine-v2", txn.get()).ok());
  ASSERT_TRUE(db_->SelectByKey(txn.get(), table_, Key(1), &row).ok());
  RecordView v2(&table_->schema(), Slice(row));
  EXPECT_EQ(v2.GetString(2).ToString(), "mine-v2");
  ASSERT_TRUE(db_->Commit(txn.get()).ok());
}

TEST_F(EngineTest, RowInsertedAfterSnapshotIsInvisible) {
  Open();
  auto reader = db_->Begin();
  ASSERT_TRUE(InsertRow(1, 10, "late").ok());
  std::string row;
  EXPECT_TRUE(
      db_->SelectByKey(reader.get(), table_, Key(1), &row).IsNotFound());
  ASSERT_TRUE(db_->Commit(reader.get()).ok());
}

TEST_F(EngineTest, DeletedRowStillVisibleToOlderSnapshot) {
  Open();
  ASSERT_TRUE(InsertRow(1, 10, "going").ok());
  auto reader = db_->Begin();
  {
    auto deleter = db_->Begin();
    ASSERT_TRUE(db_->Delete(deleter.get(), table_, Key(1)).ok());
    ASSERT_TRUE(db_->Commit(deleter.get()).ok());
  }
  std::string row;
  ASSERT_TRUE(db_->SelectByKey(reader.get(), table_, Key(1), &row).ok());
  ASSERT_TRUE(db_->Commit(reader.get()).ok());
  EXPECT_TRUE(ReadValue(1).status().IsNotFound());
}

// --- ILM data movement -------------------------------------------------------------------

TEST_F(EngineTest, UpdateMigratesPageStoreRowIntoImrs) {
  Open();
  db_->ilm()->SetForcePageStore(true);
  ASSERT_TRUE(InsertRow(1, 10, "cold").ok());
  db_->ilm()->SetForcePageStore(false);
  ASSERT_EQ(db_->rid_map()->Size(), 0);

  ASSERT_TRUE(UpdateValue(1, "hot-now").ok());
  EXPECT_EQ(db_->rid_map()->Size(), 1);
  // Verify the source classification.
  bool found_migrated = false;
  db_->rid_map()->ForEach([&](Rid, ImrsRow* row) {
    if (row->source == RowSource::kMigrated) found_migrated = true;
  });
  EXPECT_TRUE(found_migrated);
  EXPECT_EQ(*ReadValue(1), "hot-now");
}

TEST_F(EngineTest, OldSnapshotReadsPreMigrationImageFromPageStore) {
  Open();
  db_->ilm()->SetForcePageStore(true);
  ASSERT_TRUE(InsertRow(1, 10, "disk-image").ok());
  db_->ilm()->SetForcePageStore(false);

  auto reader = db_->Begin();  // snapshot before migration
  ASSERT_TRUE(UpdateValue(1, "imrs-image").ok());

  // The IMRS version is too new for this reader; it must fall back to the
  // (stale but correct-for-it) page-store image.
  std::string row;
  ASSERT_TRUE(db_->SelectByKey(reader.get(), table_, Key(1), &row).ok());
  RecordView v(&table_->schema(), Slice(row));
  EXPECT_EQ(v.GetString(2).ToString(), "disk-image");
  ASSERT_TRUE(db_->Commit(reader.get()).ok());
}

TEST_F(EngineTest, AbortedMigrationLeavesPageStoreTruthIntact) {
  Open();
  db_->ilm()->SetForcePageStore(true);
  ASSERT_TRUE(InsertRow(1, 10, "disk-truth").ok());
  db_->ilm()->SetForcePageStore(false);

  // The update migrates the row into the IMRS, then aborts: the IMRS copy
  // must vanish and the page-store image remains authoritative.
  auto txn = db_->Begin();
  ASSERT_TRUE(UpdateValue(1, "never-happened", txn.get()).ok());
  EXPECT_EQ(db_->rid_map()->Size(), 1);  // migrated (uncommitted)
  ASSERT_TRUE(db_->Abort(txn.get()).ok());
  EXPECT_EQ(db_->rid_map()->Size(), 0);
  EXPECT_EQ(*ReadValue(1), "disk-truth");
  // And the row can be migrated again cleanly afterwards.
  ASSERT_TRUE(UpdateValue(1, "second-try").ok());
  EXPECT_EQ(*ReadValue(1), "second-try");
}

TEST_F(EngineTest, AbortedSelectCachingRollsBack) {
  Open();
  db_->ilm()->SetForcePageStore(true);
  ASSERT_TRUE(InsertRow(1, 10, "cold-row").ok());
  db_->ilm()->SetForcePageStore(false);

  auto txn = db_->Begin();
  std::string row;
  ASSERT_TRUE(db_->SelectByKey(txn.get(), table_, Key(1), &row).ok());
  EXPECT_EQ(db_->rid_map()->Size(), 1);  // cached within the transaction
  ASSERT_TRUE(db_->Abort(txn.get()).ok());
  EXPECT_EQ(db_->rid_map()->Size(), 0);  // caching undone with the txn
  EXPECT_EQ(*ReadValue(1), "cold-row");  // (this read re-caches — fine)
}

TEST_F(EngineTest, PointSelectCachesPageStoreRow) {
  Open();
  db_->ilm()->SetForcePageStore(true);
  ASSERT_TRUE(InsertRow(1, 10, "readable").ok());
  db_->ilm()->SetForcePageStore(false);

  EXPECT_EQ(*ReadValue(1), "readable");
  EXPECT_EQ(db_->rid_map()->Size(), 1);
  bool found_cached = false;
  db_->rid_map()->ForEach([&](Rid, ImrsRow* row) {
    if (row->source == RowSource::kCached) found_cached = true;
  });
  EXPECT_TRUE(found_cached);
  // Subsequent reads hit the IMRS.
  const int64_t imrs_ops_before = db_->GetStats().imrs_operations;
  EXPECT_EQ(*ReadValue(1), "readable");
  EXPECT_GT(db_->GetStats().imrs_operations, imrs_ops_before);
}

TEST_F(EngineTest, SelectCachingCanBeDisabled) {
  DatabaseOptions options;
  options.ilm.select_caching = false;
  Open(options);
  db_->ilm()->SetForcePageStore(true);
  ASSERT_TRUE(InsertRow(1, 10, "stays-cold").ok());
  db_->ilm()->SetForcePageStore(false);
  EXPECT_EQ(*ReadValue(1), "stays-cold");
  EXPECT_EQ(db_->rid_map()->Size(), 0);
}

TEST_F(EngineTest, ImrsFullFallsBackToPageStore) {
  DatabaseOptions options;
  options.imrs_cache_bytes = 16 * 1024;  // absurdly small
  Open(options);
  // Insert more data than the IMRS can hold: later inserts must land in
  // the page store instead of failing.
  for (int64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(InsertRow(i, 1, std::string(50, 'x')).ok()) << i;
  }
  DatabaseStats stats = db_->GetStats();
  EXPECT_GT(stats.page_operations, 0);
  // Everything is readable regardless of where it landed.
  for (int64_t i = 0; i < 200; i += 20) {
    EXPECT_TRUE(ReadValue(i).ok()) << i;
  }
}

TEST_F(EngineTest, PackRelocatesColdRowsAndKeepsThemReadable) {
  DatabaseOptions options;
  options.imrs_cache_bytes = 64 * 1024;
  options.ilm.pack_cycle_pct = 0.20;
  Open(options);

  // Fill the IMRS beyond its steady threshold.
  int64_t id = 0;
  while (db_->imrs_allocator()->Utilization() < 0.80) {
    ASSERT_TRUE(InsertRow(id++, 1, std::string(40, 'p')).ok());
  }
  // Queue maintenance (GC) then pack cycles.
  db_->RunGcOnce();
  const int64_t before_bytes = db_->imrs_allocator()->InUseBytes();
  for (int i = 0; i < 10; ++i) {
    db_->RunIlmTickOnce();
    db_->RunGcOnce();
  }
  DatabaseStats stats = db_->GetStats();
  EXPECT_GT(stats.pack.rows_packed, 0);
  EXPECT_GT(stats.pack.bytes_packed, 0);
  EXPECT_LT(db_->imrs_allocator()->InUseBytes(), before_bytes);

  // Every row is still readable (some from the page store now).
  for (int64_t i = 0; i < id; i += 7) {
    ASSERT_TRUE(ReadValue(i).ok()) << "row " << i;
  }
  EXPECT_LT(db_->rid_map()->Size(), id);  // some rows really left the IMRS
}

TEST_F(EngineTest, GcPurgesDeletedRowsCompletely) {
  Open();
  ASSERT_TRUE(InsertRow(1, 10, "transient").ok());
  db_->RunGcOnce();  // row enters its ILM queue

  auto txn = db_->Begin();
  ASSERT_TRUE(db_->Delete(txn.get(), table_, Key(1)).ok());
  ASSERT_TRUE(db_->Commit(txn.get()).ok());

  // Advance the horizon past the delete, then purge.
  ASSERT_TRUE(InsertRow(2, 10, "clock-mover").ok());
  db_->RunGcOnce();
  db_->RunGcOnce();

  EXPECT_EQ(db_->rid_map()->Lookup(Rid{0, 0, 0}), nullptr);
  EXPECT_GT(db_->GetStats().gc.rows_purged, 0);
  // The primary index entry is gone too (a fresh insert of the key works
  // and a lookup honestly misses).
  EXPECT_TRUE(ReadValue(1).status().IsNotFound());
  ASSERT_TRUE(InsertRow(1, 10, "reborn").ok());
  EXPECT_EQ(*ReadValue(1), "reborn");
}

// --- scans ------------------------------------------------------------------------------

TEST_F(EngineTest, PrimaryScanReturnsRange) {
  Open();
  for (int64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(InsertRow(i, i % 5, "row" + std::to_string(i)).ok());
  }
  auto txn = db_->Begin();
  std::vector<ScanRow> rows;
  ASSERT_TRUE(db_->ScanIndex(txn.get(), table_, -1, Key(10), Key(20), 0,
                             &rows)
                  .ok());
  EXPECT_EQ(rows.size(), 10u);
  ASSERT_TRUE(db_->Commit(txn.get()).ok());
}

TEST_F(EngineTest, SecondaryScanFindsGroupMembers) {
  Open();
  for (int64_t i = 0; i < 30; ++i) {
    ASSERT_TRUE(InsertRow(i, i % 3, "x").ok());
  }
  auto txn = db_->Begin();
  std::string lower, upper;
  KeyEncoder::AppendInt(&lower, 1);
  KeyEncoder::AppendInt(&upper, 2);
  std::vector<ScanRow> rows;
  ASSERT_TRUE(db_->ScanIndex(txn.get(), table_, 0, Slice(lower), Slice(upper),
                             0, &rows)
                  .ok());
  EXPECT_EQ(rows.size(), 10u);
  for (const ScanRow& r : rows) {
    RecordView v(&table_->schema(), Slice(r.payload));
    EXPECT_EQ(v.GetInt64(1), 1);
  }
  ASSERT_TRUE(db_->Commit(txn.get()).ok());
}

TEST_F(EngineTest, ScanStraddlesBothStores) {
  Open();
  db_->ilm()->SetForcePageStore(true);
  for (int64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(InsertRow(i, 1, "cold").ok());
  }
  db_->ilm()->SetForcePageStore(false);
  for (int64_t i = 10; i < 20; ++i) {
    ASSERT_TRUE(InsertRow(i, 1, "hot").ok());
  }
  auto txn = db_->Begin();
  std::vector<ScanRow> rows;
  ASSERT_TRUE(
      db_->ScanIndex(txn.get(), table_, -1, Key(0), Key(20), 0, &rows).ok());
  ASSERT_EQ(rows.size(), 20u);
  int imrs = 0, page = 0;
  for (const ScanRow& r : rows) {
    (r.from_imrs ? imrs : page)++;
  }
  EXPECT_EQ(imrs, 10);
  EXPECT_EQ(page, 10);
  ASSERT_TRUE(db_->Commit(txn.get()).ok());
}

TEST_F(EngineTest, ScanSkipsRowsDeletedForThisSnapshot) {
  Open();
  for (int64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(InsertRow(i, 1, "x").ok());
  }
  auto txn = db_->Begin();
  ASSERT_TRUE(db_->Delete(txn.get(), table_, Key(5)).ok());
  ASSERT_TRUE(db_->Commit(txn.get()).ok());

  auto reader = db_->Begin();
  std::vector<ScanRow> rows;
  ASSERT_TRUE(
      db_->ScanIndex(reader.get(), table_, -1, Key(0), Key(10), 0, &rows).ok());
  EXPECT_EQ(rows.size(), 9u);
  ASSERT_TRUE(db_->Commit(reader.get()).ok());
}

// --- concurrency ---------------------------------------------------------------------------

TEST_F(EngineTest, WriteConflictTimesOutAndAborts) {
  Open();
  ASSERT_TRUE(InsertRow(1, 10, "contested").ok());
  auto holder = db_->Begin();
  ASSERT_TRUE(UpdateValue(1, "holder", holder.get()).ok());

  auto contender = db_->Begin();
  Status s = UpdateValue(1, "contender", contender.get());
  EXPECT_TRUE(s.IsAborted());
  ASSERT_TRUE(db_->Abort(contender.get()).ok());
  ASSERT_TRUE(db_->Commit(holder.get()).ok());
  EXPECT_EQ(*ReadValue(1), "holder");
}

TEST_F(EngineTest, ConcurrentDisjointWritersAllSucceed) {
  Open();
  constexpr int kThreads = 4;
  constexpr int kRows = 200;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kRows; ++i) {
        const int64_t id = static_cast<int64_t>(t) * 10000 + i;
        if (!InsertRow(id, t, "w").ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  auto txn = db_->Begin();
  std::vector<ScanRow> rows;
  ASSERT_TRUE(db_->ScanIndex(txn.get(), table_, -1, Slice(), Slice(), 0,
                             &rows)
                  .ok());
  EXPECT_EQ(rows.size(), static_cast<size_t>(kThreads * kRows));
  ASSERT_TRUE(db_->Commit(txn.get()).ok());
}

TEST_F(EngineTest, ConcurrentCountersUnderContention) {
  Open();
  ASSERT_TRUE(InsertRow(1, 0, "0").ok());
  constexpr int kThreads = 4;
  constexpr int kIncrements = 50;
  std::atomic<int> committed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        auto txn = db_->Begin();
        Status s = db_->Update(txn.get(), table_, Key(1),
                               [&](std::string* payload) {
                                 RecordEditor e(&table_->schema(),
                                                Slice(*payload));
                                 const int cur = std::stoi(e.GetString(2));
                                 e.SetString(2, std::to_string(cur + 1));
                                 *payload = e.Encode();
                               });
        if (s.ok()) s = db_->Commit(txn.get());
        else { Status a = db_->Abort(txn.get()); (void)a; }
        if (s.ok()) committed.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  // Exclusive locks make increments exact for committed transactions.
  EXPECT_EQ(std::stoi(*ReadValue(1)), committed.load());
  EXPECT_GT(committed.load(), 0);
}

// --- misc -------------------------------------------------------------------------------------

TEST_F(EngineTest, MultiPartitionTableRoutesByColumn) {
  DatabaseOptions options;
  Open(options);
  TableOptions topt;
  topt.name = "parted";
  topt.schema = Schema({Column::Int64("id"), Column::Int64("region")});
  topt.primary_key = {0};
  topt.num_partitions = 4;
  topt.partition_column = 1;
  Result<Table*> created = db_->CreateTable(topt);
  ASSERT_TRUE(created.ok());
  Table* parted = *created;
  ASSERT_EQ(parted->num_partitions(), 4u);

  for (int64_t i = 0; i < 40; ++i) {
    auto txn = db_->Begin();
    RecordBuilder b(&parted->schema());
    b.AddInt64(i).AddInt64(i % 4);
    ASSERT_TRUE(db_->Insert(txn.get(), parted, b.Finish()).ok());
    ASSERT_TRUE(db_->Commit(txn.get()).ok());
  }
  // Each partition owns exactly its region's rows.
  for (size_t p = 0; p < 4; ++p) {
    EXPECT_EQ(parted->partition(p).ilm->metrics.imrs_rows.Load(), 10);
  }
  // Point lookups work across partitions.
  for (int64_t i = 0; i < 40; i += 7) {
    auto txn = db_->Begin();
    std::string row;
    EXPECT_TRUE(db_->SelectByKey(txn.get(), parted,
                                 parted->pk_encoder().KeyForInts({i}), &row)
                    .ok());
    ASSERT_TRUE(db_->Commit(txn.get()).ok());
  }
}

TEST_F(EngineTest, RangePartitionedTableRoutesByBounds) {
  DatabaseOptions options;
  Open(options);
  TableOptions topt;
  topt.name = "orders_by_month";
  topt.schema = Schema({Column::Int64("id"), Column::Int64("month")});
  topt.primary_key = {0};
  topt.partition_column = 1;
  topt.range_bounds = {202603, 202606};  // [,202603) [202603,202606) [202606,)
  Result<Table*> created = db_->CreateTable(topt);
  ASSERT_TRUE(created.ok());
  Table* orders = *created;
  ASSERT_EQ(orders->num_partitions(), 3u);
  EXPECT_TRUE(orders->range_partitioned());

  EXPECT_EQ(orders->PartitionIndexForValue(202601), 0u);
  EXPECT_EQ(orders->PartitionIndexForValue(202602), 0u);
  EXPECT_EQ(orders->PartitionIndexForValue(202603), 1u);
  EXPECT_EQ(orders->PartitionIndexForValue(202605), 1u);
  EXPECT_EQ(orders->PartitionIndexForValue(202606), 2u);
  EXPECT_EQ(orders->PartitionIndexForValue(202612), 2u);

  // Rows land in (and are counted against) the right partition.
  const int64_t months[] = {202601, 202604, 202607};
  int64_t id = 0;
  for (int64_t month : months) {
    for (int i = 0; i < 5; ++i) {
      auto txn = db_->Begin();
      RecordBuilder b(&orders->schema());
      b.AddInt64(id++).AddInt64(month);
      ASSERT_TRUE(db_->Insert(txn.get(), orders, b.Finish()).ok());
      ASSERT_TRUE(db_->Commit(txn.get()).ok());
    }
  }
  for (size_t p = 0; p < 3; ++p) {
    EXPECT_EQ(orders->partition(p).ilm->metrics.imrs_rows.Load(), 5)
        << "partition " << p;
  }
  // Point lookups resolve across partitions.
  for (int64_t i = 0; i < id; ++i) {
    auto txn = db_->Begin();
    std::string row;
    EXPECT_TRUE(db_->SelectByKey(txn.get(), orders,
                                 orders->pk_encoder().KeyForInts({i}), &row)
                    .ok())
        << i;
    ASSERT_TRUE(db_->Commit(txn.get()).ok());
  }
}

TEST_F(EngineTest, RangePartitionValidation) {
  Open();
  TableOptions topt;
  topt.name = "bad";
  topt.schema = Schema({Column::Int64("id"), Column::Int64("m")});
  topt.primary_key = {0};
  topt.range_bounds = {10, 5};  // not ascending
  topt.partition_column = 1;
  EXPECT_TRUE(db_->CreateTable(topt).status().IsInvalidArgument());
  topt.range_bounds = {5, 10};
  topt.partition_column = -1;  // bounds without a column
  topt.name = "bad2";
  EXPECT_TRUE(db_->CreateTable(topt).status().IsInvalidArgument());
}

TEST_F(EngineTest, TunerDisablesColdRangePartitionsOnly) {
  // Sec. V's motivating case: in a date-range-partitioned table only the
  // most recent partition is hot; the tuner should disable IMRS use for
  // the stale partitions while the hot one stays enabled.
  DatabaseOptions options;
  options.imrs_cache_bytes = 512 * 1024;
  options.ilm.tuning_window_txns = 50;
  options.ilm.hysteresis_windows = 2;
  options.ilm.min_new_rows_for_disable = 10;
  Open(options);

  TableOptions topt;
  topt.name = "events";
  topt.schema = Schema({Column::Int64("id"), Column::Int64("month"),
                        Column::String("data", 48)});
  topt.primary_key = {0};
  topt.partition_column = 1;
  topt.range_bounds = {202606};  // old months | current month
  Table* events = *db_->CreateTable(topt);

  PartitionState* old_part = events->partition(0).ilm;
  PartitionState* hot_part = events->partition(1).ilm;

  int64_t id = 0;
  auto insert_event = [&](int64_t month) {
    auto txn = db_->Begin();
    RecordBuilder b(&events->schema());
    b.AddInt64(id++).AddInt64(month).AddString(std::string(40, 'e'));
    ASSERT_TRUE(db_->Insert(txn.get(), events, b.Finish()).ok());
    ASSERT_TRUE(db_->Commit(txn.get()).ok());
  };

  // Backfill keeps streaming into the old partition (never re-read), while
  // current-month rows are re-read constantly.
  for (int round = 0; round < 120 && old_part->imrs_enabled.load();
       ++round) {
    for (int i = 0; i < 40; ++i) insert_event(202601);  // cold backfill
    for (int i = 0; i < 20; ++i) {
      insert_event(202607);
      auto txn = db_->Begin();
      std::string row;
      Status s = db_->SelectByKey(txn.get(), events,
                                  events->pk_encoder().KeyForInts({id - 1}),
                                  &row);
      ASSERT_TRUE(s.ok());
      ASSERT_TRUE(db_->Commit(txn.get()).ok());
    }
    db_->RunGcOnce();
    db_->RunIlmTickOnce();
  }
  EXPECT_FALSE(old_part->imrs_enabled.load())
      << "stale range partition should lose IMRS enablement";
  EXPECT_TRUE(hot_part->imrs_enabled.load())
      << "current range partition must stay enabled";
}

TEST_F(EngineTest, HashIndexServesPointLookups) {
  Open();
  ASSERT_TRUE(InsertRow(1, 10, "fast").ok());
  const int64_t hits_before = table_->hash_index()->GetStats().hits;
  EXPECT_EQ(*ReadValue(1), "fast");
  EXPECT_GT(table_->hash_index()->GetStats().hits, hits_before);
}

TEST_F(EngineTest, StatsReflectActivity) {
  Open();
  ASSERT_TRUE(InsertRow(1, 10, "x").ok());
  ASSERT_TRUE(UpdateValue(1, "y").ok());
  DatabaseStats stats = db_->GetStats();
  EXPECT_EQ(stats.txns.committed, 2);
  EXPECT_GT(stats.imrs_operations, 0);
  EXPECT_GT(stats.sysimrslogs.records_appended, 0);
  EXPECT_GT(stats.imrs_cache.in_use_bytes, 0);
}

TEST_F(EngineTest, CheckpointFlushesAndTruncates) {
  Open();
  db_->ilm()->SetForcePageStore(true);
  for (int64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(InsertRow(i, 1, "flushme").ok());
  }
  EXPECT_GT(db_->syslogs()->SizeBytes(), 0);
  ASSERT_TRUE(db_->Checkpoint().ok());
  EXPECT_EQ(db_->syslogs()->SizeBytes(), 0);
  // Data remains readable after a cold cache restart.
  ASSERT_TRUE(db_->buffer_cache()->DropAll().ok());
  db_->ilm()->SetForcePageStore(false);
  EXPECT_TRUE(ReadValue(5).ok());
}

// --- Sec. X future-work features: pinning and pre-warm ---------------------------

TEST_F(EngineTest, PinnedTableIsNeverPacked) {
  DatabaseOptions options;
  options.imrs_cache_bytes = 64 * 1024;
  options.ilm.pack_cycle_pct = 0.25;
  Open(options);

  TableOptions popt;
  popt.name = "pinned";
  popt.schema = Schema({Column::Int64("id"), Column::String("v", 40)});
  popt.primary_key = {0};
  popt.pin_in_imrs = true;
  Table* pinned = *db_->CreateTable(popt);

  // A few pinned rows plus enough unpinned churn to force packing.
  for (int64_t i = 0; i < 20; ++i) {
    auto txn = db_->Begin();
    RecordBuilder b(&pinned->schema());
    b.AddInt64(i).AddString("pin");
    ASSERT_TRUE(db_->Insert(txn.get(), pinned, b.Finish()).ok());
    ASSERT_TRUE(db_->Commit(txn.get()).ok());
  }
  int64_t id = 0;
  while (db_->imrs_allocator()->Utilization() < 0.85) {
    ASSERT_TRUE(InsertRow(id++, 1, std::string(40, 'u')).ok());
  }
  db_->RunGcOnce();
  for (int i = 0; i < 10; ++i) db_->RunIlmTickOnce();

  EXPECT_GT(db_->GetStats().pack.rows_packed, 0);  // unpinned churned
  EXPECT_EQ(pinned->partition(0).ilm->metrics.rows_packed.Load(), 0);
  EXPECT_EQ(pinned->partition(0).ilm->metrics.imrs_rows.Load(), 20);
}

TEST_F(EngineTest, PinnedTableAdmitsUnderBypass) {
  Open();
  TableOptions popt;
  popt.name = "pinned";
  popt.schema = Schema({Column::Int64("id"), Column::String("v", 16)});
  popt.primary_key = {0};
  popt.pin_in_imrs = true;
  Table* pinned = *db_->CreateTable(popt);
  // Even with the partition tuner-disabled and under ILM rules that would
  // reject admission, pinning wins.
  pinned->partition(0).ilm->imrs_enabled.store(false);
  EXPECT_TRUE(db_->ilm()->ShouldInsertToImrs(pinned->partition(0).ilm));
  EXPECT_TRUE(db_->ilm()->ShouldMigrateOnUpdate(pinned->partition(0).ilm,
                                                false, false));
}

TEST_F(EngineTest, PrewarmLoadsPageStoreRowsIntoImrs) {
  Open();
  db_->ilm()->SetForcePageStore(true);
  for (int64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(InsertRow(i, 1, "cold-" + std::to_string(i)).ok());
  }
  db_->ilm()->SetForcePageStore(false);
  ASSERT_EQ(db_->rid_map()->Size(), 0);

  Result<int64_t> warmed = db_->PrewarmTable(table_);
  ASSERT_TRUE(warmed.ok());
  EXPECT_EQ(*warmed, 50);
  EXPECT_EQ(db_->rid_map()->Size(), 50);
  // Warmed rows read correctly and from the IMRS.
  auto txn = db_->Begin();
  std::string row;
  ASSERT_TRUE(db_->SelectByKey(txn.get(), table_, Key(7), &row).ok());
  RecordView v(&table_->schema(), Slice(row));
  EXPECT_EQ(v.GetString(2).ToString(), "cold-7");
  ASSERT_TRUE(db_->Commit(txn.get()).ok());
}

TEST_F(EngineTest, PrewarmIsIdempotentAndStopsWhenFull) {
  DatabaseOptions options;
  options.imrs_cache_bytes = 24 * 1024;
  Open(options);
  db_->ilm()->SetForcePageStore(true);
  for (int64_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(InsertRow(i, 1, std::string(40, 'w')).ok());
  }
  db_->ilm()->SetForcePageStore(false);

  Result<int64_t> first = db_->PrewarmTable(table_);
  ASSERT_TRUE(first.ok());
  EXPECT_GT(*first, 0);
  EXPECT_LT(*first, 500);  // the 24 KiB cache cannot hold all 500

  Result<int64_t> second = db_->PrewarmTable(table_);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, 0);  // already-resident rows are skipped
}

TEST_F(EngineTest, TableCatalogLookups) {
  Open();
  EXPECT_EQ(db_->GetTable("kv"), table_);
  EXPECT_EQ(db_->GetTable("absent"), nullptr);
  EXPECT_EQ(db_->GetTable(table_->id()), table_);
  EXPECT_EQ(db_->GetTable(999u), nullptr);
  EXPECT_EQ(db_->Tables().size(), 1u);
}

TEST_F(EngineTest, StatsPrinterProducesAllSections) {
  Open();
  ASSERT_TRUE(InsertRow(1, 10, "x").ok());
  ASSERT_TRUE(UpdateValue(1, "y").ok());
  const std::string report = FormatDatabaseStats(db_->GetStats());
  for (const char* section :
       {"transactions", "op routing", "IMRS cache", "buffer cache", "locks",
        "GC", "Pack", "syslogs", "sysimrslogs"}) {
    EXPECT_NE(report.find(section), std::string::npos) << section;
  }
  EXPECT_NE(report.find("2 committed"), std::string::npos);

  const std::string breakdown = FormatTableBreakdown(db_.get());
  EXPECT_NE(breakdown.find("kv/0"), std::string::npos);
  EXPECT_NE(breakdown.find("enabled"), std::string::npos);
}

TEST_F(EngineTest, StatsPrinterShowsPinnedAndDisabledModes) {
  Open();
  TableOptions popt;
  popt.name = "pinned_t";
  popt.schema = Schema({Column::Int64("id")});
  popt.primary_key = {0};
  popt.pin_in_imrs = true;
  Table* pinned = *db_->CreateTable(popt);
  (void)pinned;
  table_->partition(0).ilm->imrs_enabled.store(false);
  const std::string breakdown = FormatTableBreakdown(db_.get());
  EXPECT_NE(breakdown.find("pinned"), std::string::npos);
  EXPECT_NE(breakdown.find("disabled"), std::string::npos);
}

// Regression: a partition retired mid-run (metrics unregistered before the
// final print) used to vanish from the breakdown, dropping its pack-skip
// counts. The registry's snapshot-at-unregistration semantics keep it.
TEST_F(EngineTest, StatsPrinterKeepsRetiredPartitionCounts) {
  Open();
  ASSERT_TRUE(InsertRow(1, 10, "x").ok());
  PartitionState* state = table_->partition(0).ilm;
  state->metrics.rows_skipped_hot.Add(7);
  state->UnregisterMetrics(db_->metrics_registry());

  const std::string breakdown = FormatTableBreakdown(db_.get());
  EXPECT_NE(breakdown.find("kv/0"), std::string::npos);
  EXPECT_NE(breakdown.find("retired"), std::string::npos);
  // The skipped column survives with its final value.
  EXPECT_NE(breakdown.find(" 7\n"), std::string::npos) << breakdown;

  // Lookup still serves the retained sample directly.
  obs::MetricSample sample;
  obs::MetricLabels labels{"ilm", "kv", "0", ""};
  ASSERT_TRUE(db_->metrics_registry()->Lookup("partition.rows_skipped_hot",
                                              labels, &sample));
  EXPECT_TRUE(sample.retained);
  EXPECT_EQ(sample.value, 7);
}

}  // namespace
}  // namespace btrim
