// Unit tests for the common module: Status/Result, Slice, coding helpers,
// sharded counters, spinlocks, the logical clock, and the RNG.

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/coding.h"
#include "common/counters.h"
#include "common/hash.h"
#include "common/random.h"
#include "common/slice.h"
#include "common/spinlock.h"
#include "common/status.h"

namespace btrim {
namespace {

// --- Status -----------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing row");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.ToString(), "NotFound: missing row");
}

TEST(StatusTest, EveryFactoryMapsToItsPredicate) {
  EXPECT_TRUE(Status::Corruption("").IsCorruption());
  EXPECT_TRUE(Status::InvalidArgument("").IsInvalidArgument());
  EXPECT_TRUE(Status::IOError("").IsIOError());
  EXPECT_TRUE(Status::Busy("").IsBusy());
  EXPECT_TRUE(Status::Aborted("").IsAborted());
  EXPECT_TRUE(Status::NoSpace("").IsNoSpace());
  EXPECT_TRUE(Status::AlreadyExists("").IsAlreadyExists());
  EXPECT_TRUE(Status::NotSupported("").IsNotSupported());
  EXPECT_TRUE(Status::Shutdown("").IsShutdown());
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto inner = []() -> Status { return Status::Busy("held"); };
  auto outer = [&]() -> Status {
    BTRIM_RETURN_IF_ERROR(inner());
    return Status::OK();
  };
  EXPECT_TRUE(outer().IsBusy());
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> ok(42);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);

  Result<int> err(Status::IOError("disk gone"));
  EXPECT_FALSE(err.ok());
  EXPECT_TRUE(err.status().IsIOError());
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(9));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(*std::move(r));
  EXPECT_EQ(*v, 9);
}

// --- Slice -------------------------------------------------------------------

TEST(SliceTest, BasicAccessors) {
  Slice s("hello");
  EXPECT_EQ(s.size(), 5u);
  EXPECT_FALSE(s.empty());
  EXPECT_EQ(s[1], 'e');
  EXPECT_EQ(s.ToString(), "hello");
}

TEST(SliceTest, CompareIsMemcmpOrder) {
  EXPECT_LT(Slice("abc").compare(Slice("abd")), 0);
  EXPECT_GT(Slice("abd").compare(Slice("abc")), 0);
  EXPECT_EQ(Slice("abc").compare(Slice("abc")), 0);
  // Prefix sorts first.
  EXPECT_LT(Slice("ab").compare(Slice("abc")), 0);
}

TEST(SliceTest, EqualityAndPrefix) {
  EXPECT_EQ(Slice("xyz"), Slice(std::string("xyz")));
  EXPECT_NE(Slice("xyz"), Slice("xy"));
  EXPECT_TRUE(Slice("hello world").starts_with(Slice("hello")));
  EXPECT_FALSE(Slice("hello").starts_with(Slice("hello world")));
}

TEST(SliceTest, RemovePrefix) {
  Slice s("abcdef");
  s.remove_prefix(2);
  EXPECT_EQ(s.ToString(), "cdef");
}

TEST(SliceTest, EmbeddedNulBytesCompare) {
  const char a[] = {'a', '\0', 'b'};
  const char b[] = {'a', '\0', 'c'};
  EXPECT_LT(Slice(a, 3).compare(Slice(b, 3)), 0);
}

// --- coding -------------------------------------------------------------------

TEST(CodingTest, FixedRoundTrips) {
  std::string buf;
  PutFixed16(&buf, 0xBEEF);
  PutFixed32(&buf, 0xDEADBEEFu);
  PutFixed64(&buf, 0x0123456789ABCDEFull);
  const char* p = buf.data();
  EXPECT_EQ(DecodeFixed16(p), 0xBEEF);
  EXPECT_EQ(DecodeFixed32(p + 2), 0xDEADBEEFu);
  EXPECT_EQ(DecodeFixed64(p + 6), 0x0123456789ABCDEFull);
}

TEST(CodingTest, BigEndianSortsNumerically) {
  std::string a, b;
  PutBigEndian64(&a, 255);
  PutBigEndian64(&b, 256);
  EXPECT_LT(a, b);
  EXPECT_EQ(GetBigEndian64(a.data()), 255u);
  EXPECT_EQ(GetBigEndian64(b.data()), 256u);
}

TEST(CodingTest, BigEndianRoundTripExtremes) {
  for (uint64_t v : {0ull, 1ull, 0xffffffffffffffffull, 1ull << 63}) {
    std::string s;
    PutBigEndian64(&s, v);
    EXPECT_EQ(GetBigEndian64(s.data()), v);
  }
}

// --- counters -----------------------------------------------------------------

TEST(ShardedCounterTest, SingleThreadAccumulates) {
  ShardedCounter c;
  for (int i = 0; i < 1000; ++i) c.Inc();
  c.Add(-100);
  EXPECT_EQ(c.Load(), 900);
  c.Reset();
  EXPECT_EQ(c.Load(), 0);
}

TEST(ShardedCounterTest, ConcurrentAddsAreExact) {
  ShardedCounter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Load(), kThreads * kPerThread);
}

TEST(AtomicGaugeTest, AddSubSet) {
  AtomicGauge g;
  g.Add(100);
  g.Sub(40);
  EXPECT_EQ(g.Load(), 60);
  g.Set(-5);
  EXPECT_EQ(g.Load(), -5);
}

// --- spinlocks -----------------------------------------------------------------

TEST(SpinLockTest, MutualExclusion) {
  SpinLock lock;
  int counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        std::lock_guard<SpinLock> guard(lock);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, 40000);
}

TEST(SpinLockTest, TryLockFailsWhenHeld) {
  SpinLock lock;
  lock.lock();
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(RwSpinLockTest, SharedReadersCoexist) {
  RwSpinLock lock;
  lock.lock_shared();
  EXPECT_TRUE(lock.try_lock_shared());
  EXPECT_FALSE(lock.try_lock());  // writer excluded
  lock.unlock_shared();
  lock.unlock_shared();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(RwSpinLockTest, WriterExcludesReaders) {
  RwSpinLock lock;
  lock.lock();
  EXPECT_FALSE(lock.try_lock_shared());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
}

TEST(RwSpinLockTest, ConcurrentReadersAndWriters) {
  RwSpinLock lock;
  int value = 0;
  std::atomic<bool> fail{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 5000; ++i) {
        lock.lock();
        ++value;
        lock.unlock();
      }
    });
    threads.emplace_back([&] {
      for (int i = 0; i < 5000; ++i) {
        lock.lock_shared();
        if (value < 0) fail.store(true);
        lock.unlock_shared();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(fail.load());
  EXPECT_EQ(value, 10000);
}

// --- clock ---------------------------------------------------------------------

TEST(LogicalClockTest, TickMonotone) {
  LogicalClock clock;
  EXPECT_EQ(clock.Now(), 0u);
  EXPECT_EQ(clock.Tick(), 1u);
  EXPECT_EQ(clock.Tick(), 2u);
  EXPECT_EQ(clock.Now(), 2u);
  clock.Reset(100);
  EXPECT_EQ(clock.Tick(), 101u);
}

TEST(LogicalClockTest, ConcurrentTicksAreUnique) {
  LogicalClock clock;
  constexpr int kThreads = 4;
  constexpr int kTicks = 10000;
  std::vector<std::vector<uint64_t>> seen(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&clock, &seen, t] {
      for (int i = 0; i < kTicks; ++i) seen[t].push_back(clock.Tick());
    });
  }
  for (auto& t : threads) t.join();
  std::vector<uint64_t> all;
  for (auto& v : seen) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  EXPECT_EQ(all.size(), static_cast<size_t>(kThreads * kTicks));
  EXPECT_EQ(all.front(), 1u);
  EXPECT_EQ(all.back(), static_cast<uint64_t>(kThreads * kTicks));
  EXPECT_TRUE(std::adjacent_find(all.begin(), all.end()) == all.end());
}

// --- random --------------------------------------------------------------------

TEST(RandomTest, DeterministicPerSeed) {
  Random a(7), b(7), c(8);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RandomTest, UniformRangeStaysInBounds) {
  Random rng(99);
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformRange(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(RandomTest, PercentChanceRoughlyCalibrated) {
  Random rng(123);
  int hits = 0;
  constexpr int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.PercentChance(25)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.25, 0.02);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

// --- hash ----------------------------------------------------------------------

TEST(HashTest, Mix64Disperses) {
  // Consecutive inputs should produce well-spread outputs.
  uint64_t prev = Mix64(0);
  for (uint64_t i = 1; i < 1000; ++i) {
    const uint64_t h = Mix64(i);
    EXPECT_NE(h, prev);
    prev = h;
  }
}

TEST(HashTest, HashBytesSensitiveToEveryByte) {
  std::string base = "the quick brown fox";
  const uint64_t h0 = HashBytes(base.data(), base.size());
  for (size_t i = 0; i < base.size(); ++i) {
    std::string copy = base;
    copy[i] ^= 1;
    EXPECT_NE(HashBytes(copy.data(), copy.size()), h0) << "byte " << i;
  }
}

}  // namespace
}  // namespace btrim
