// Cold-columnar store tests (DESIGN.md Sec. 15): segment codec edge cases
// (dictionary overflow, delta on non-monotone data, empty strings), framed
// storage durability (torn tails, the erase journal), and the engine-level
// contract — packed rows keep their values across reads, writes, crash
// recovery, and any pack worker count.

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cold/cold_page.h"
#include "cold/cold_store.h"
#include "common/coding.h"
#include "engine/database.h"

namespace btrim {
namespace {

Rid MakeRid(uint32_t n) { return Rid{1, n / 100 + 1, static_cast<uint16_t>(n % 100)}; }

// --- segment codec ----------------------------------------------------------

class ColdCodecTest : public ::testing::Test {
 protected:
  ColdCodecTest()
      : schema_({
            Column::Int64("id"),
            Column::String("tag", 64),
            Column::Int64("counter"),
            Column::Double("ratio"),
        }) {}

  std::string Row(int64_t id, const std::string& tag, int64_t counter,
                  double ratio) {
    RecordBuilder b(&schema_);
    b.AddInt64(id).AddString(tag).AddInt64(counter).AddDouble(ratio);
    return b.Finish().ToString();
  }

  std::shared_ptr<ColdSegment> Build(const std::vector<std::string>& rows,
                                     std::vector<ColdColumnStats>* stats) {
    ColdPageBuilder builder(&schema_);
    for (uint32_t i = 0; i < rows.size(); ++i) {
      EXPECT_TRUE(builder.Add(MakeRid(i), Slice(rows[i])).ok());
    }
    std::string blob = builder.Finish(/*table_id=*/7, /*partition_id=*/0,
                                      /*seq=*/0, stats);
    Result<std::shared_ptr<ColdSegment>> seg =
        ColdSegment::Parse(std::move(blob), &schema_);
    EXPECT_TRUE(seg.ok()) << seg.status().ToString();
    return seg.ok() ? *seg : nullptr;
  }

  Schema schema_;
};

TEST_F(ColdCodecTest, EmptyStringColumnRoundTrips) {
  // All-empty strings are the codec's "all NULL" analog: the dictionary
  // holds one empty entry and the column must still round-trip.
  std::vector<std::string> rows;
  for (int64_t i = 0; i < 200; ++i) rows.push_back(Row(i, "", i, 0.5));
  std::vector<ColdColumnStats> stats;
  auto seg = Build(rows, &stats);
  ASSERT_NE(seg, nullptr);
  EXPECT_EQ(stats[1].encoding, ColdEncoding::kDict);
  EXPECT_EQ(stats[1].distinct, 1u);
  for (uint32_t r = 0; r < seg->row_count(); ++r) {
    EXPECT_EQ(seg->StringAt(1, r), Slice(""));
    EXPECT_EQ(seg->IntAt(0, r), static_cast<int64_t>(r));
  }
  std::string materialized;
  seg->MaterializeRow(3, &materialized);
  EXPECT_EQ(materialized, rows[3]);
}

TEST_F(ColdCodecTest, LowCardinalityStringsDictionaryCompress) {
  std::vector<std::string> rows;
  for (int64_t i = 0; i < 512; ++i) {
    rows.push_back(Row(i, "status-" + std::to_string(i % 4), i, 1.0));
  }
  std::vector<ColdColumnStats> stats;
  auto seg = Build(rows, &stats);
  ASSERT_NE(seg, nullptr);
  EXPECT_EQ(stats[1].encoding, ColdEncoding::kDict);
  EXPECT_EQ(stats[1].distinct, 4u);
  EXPECT_LT(stats[1].encoded_bytes, stats[1].raw_bytes);
  for (uint32_t r = 0; r < seg->row_count(); ++r) {
    EXPECT_EQ(seg->StringAt(1, r).ToString(),
              "status-" + std::to_string(r % 4));
  }
}

TEST_F(ColdCodecTest, DictOverflowFallsBackToPlain) {
  // 70k distinct values exceed the 2-byte code space; the builder must fall
  // back to plain rather than emit a >65535-entry dictionary.
  std::vector<std::string> rows;
  for (int64_t i = 0; i < 70000; ++i) {
    rows.push_back(Row(i, "unique-tag-" + std::to_string(i), i, 0.0));
  }
  std::vector<ColdColumnStats> stats;
  auto seg = Build(rows, &stats);
  ASSERT_NE(seg, nullptr);
  EXPECT_EQ(stats[1].encoding, ColdEncoding::kPlain);
  EXPECT_EQ(seg->StringAt(1, 69999).ToString(), "unique-tag-69999");
  EXPECT_EQ(seg->StringAt(1, 0).ToString(), "unique-tag-0");
}

TEST_F(ColdCodecTest, MonotoneIntsUseDeltaNonMonotoneDoNot) {
  // Column 0 ascends (delta-eligible); column 2 zig-zags (must not be
  // delta-encoded — a delta decoder over it would reconstruct garbage).
  std::vector<std::string> rows;
  for (int64_t i = 0; i < 300; ++i) {
    const int64_t zigzag = (i % 2 == 0) ? i : -i;
    rows.push_back(Row(1000 + i, "t", zigzag, 0.0));
  }
  std::vector<ColdColumnStats> stats;
  auto seg = Build(rows, &stats);
  ASSERT_NE(seg, nullptr);
  EXPECT_EQ(stats[0].encoding, ColdEncoding::kDelta);
  EXPECT_NE(stats[2].encoding, ColdEncoding::kDelta);
  std::vector<int64_t> ids;
  ASSERT_TRUE(seg->DecodeInts(0, &ids).ok());
  std::vector<int64_t> zig;
  ASSERT_TRUE(seg->DecodeInts(2, &zig).ok());
  for (int64_t i = 0; i < 300; ++i) {
    EXPECT_EQ(ids[i], 1000 + i);
    EXPECT_EQ(zig[i], (i % 2 == 0) ? i : -i);
    EXPECT_EQ(seg->IntAt(2, static_cast<uint32_t>(i)), zig[i]);
  }
}

TEST_F(ColdCodecTest, CorruptDirectoryEntryIsRejectedNotIndexed) {
  // A frame can checksum cleanly yet carry a directory whose width/encoding
  // the accessors would index out of bounds with (writer version drift,
  // in-memory corruption). Corrupt a dir byte, re-checksum, and expect
  // Parse to reject the blob as Corruption instead of handing it out.
  std::vector<std::string> rows;
  for (int64_t i = 0; i < 16; ++i) rows.push_back(Row(i, "t", i, 0.0));
  ColdPageBuilder builder(&schema_);
  for (uint32_t i = 0; i < rows.size(); ++i) {
    ASSERT_TRUE(builder.Add(MakeRid(i), Slice(rows[i])).ok());
  }
  const std::string blob = builder.Finish(7, 0, 0, nullptr);
  // Layout: 44-byte header (payload checksum at offset 40), then 16 u64
  // RIDs, then 20-byte dir entries ([0] = encoding byte, [1] = width).
  const size_t kHeader = 44;
  const size_t kChecksumOff = 40;
  const size_t dir0 = kHeader + 16 * 8;
  auto corrupt = [&](size_t off, char value) {
    std::string c = blob;
    c[off] = value;
    uint32_t h = 2166136261u;  // FNV-1a: keep the checksum valid so only
    for (size_t i = kHeader; i < c.size(); ++i) {  // the dir guards can object
      h ^= static_cast<unsigned char>(c[i]);
      h *= 16777619u;
    }
    EncodeFixed32(&c[kChecksumOff], h);
    return ColdSegment::Parse(std::move(c), &schema_);
  };
  ASSERT_TRUE(ColdSegment::Parse(std::string(blob), &schema_).ok());
  auto bad_encoding = corrupt(dir0, 7);  // past kDelta
  ASSERT_FALSE(bad_encoding.ok());
  EXPECT_TRUE(bad_encoding.status().IsCorruption());
  auto bad_width = corrupt(dir0 + 1, 3);  // not in {1,2,4,8}
  ASSERT_FALSE(bad_width.ok());
  EXPECT_TRUE(bad_width.status().IsCorruption());
  auto bad_len = corrupt(dir0 + 1, 2);  // legal width, rows*width != len
  ASSERT_FALSE(bad_len.ok());
  EXPECT_TRUE(bad_len.status().IsCorruption());
}

// --- framed storage: torn tails and the erase journal -----------------------

class ColdStorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/btrim_cold_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    schema_ = std::make_unique<Schema>(Schema({
        Column::Int64("id"),
        Column::String("value", 64),
    }));
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string SegPath() { return dir_ + "/coldstore.seg"; }

  std::unique_ptr<ColdStore> OpenStore(size_t segment_rows = 1024) {
    auto store = std::make_unique<ColdStore>(segment_rows);
    store->RegisterTable(1, schema_.get());
    Result<std::unique_ptr<FileLogStorage>> storage =
        FileLogStorage::Open(SegPath());
    EXPECT_TRUE(storage.ok());
    store->AttachStorage(std::move(*storage));
    return store;
  }

  std::string Row(int64_t id) {
    RecordBuilder b(schema_.get());
    b.AddInt64(id).AddString("value-" + std::to_string(id));
    return b.Finish().ToString();
  }

  std::string dir_;
  std::unique_ptr<Schema> schema_;
};

TEST_F(ColdStorageTest, TornTailFrameIsDroppedIntactFramesSurvive) {
  {
    auto store = OpenStore();
    for (int64_t i = 0; i < 50; ++i) {
      ASSERT_TRUE(store->Place(1, 0, MakeRid(i), Slice(Row(i))).ok());
    }
    ASSERT_TRUE(store->Flush().ok());  // segment 1 (rows 0..49)
    for (int64_t i = 50; i < 100; ++i) {
      ASSERT_TRUE(store->Place(1, 0, MakeRid(i), Slice(Row(i))).ok());
    }
    ASSERT_TRUE(store->Flush().ok());  // segment 2 (rows 50..99)
  }
  // Tear the tail: chop into the second frame's blob.
  const auto full = std::filesystem::file_size(SegPath());
  std::filesystem::resize_file(SegPath(), full - 17);

  auto store = OpenStore();
  ASSERT_TRUE(store->Load().ok());
  EXPECT_EQ(store->sealed_segments(), 1);
  EXPECT_EQ(store->rows(), 50);
  std::string out;
  EXPECT_TRUE(store->ReadRow(MakeRid(7), &out).ok());
  EXPECT_EQ(out, Row(7));
  EXPECT_TRUE(store->ReadRow(MakeRid(77), &out).IsNotFound());
}

TEST_F(ColdStorageTest, EraseJournalSurvivesReload) {
  {
    auto store = OpenStore();
    for (int64_t i = 0; i < 20; ++i) {
      ASSERT_TRUE(store->Place(1, 0, MakeRid(i), Slice(Row(i))).ok());
    }
    ASSERT_TRUE(store->Flush().ok());
    // Erase a flushed row; the segment frame is immutable, so only the
    // journal (written by the next Flush) makes this durable.
    EXPECT_TRUE(store->Erase(MakeRid(3)));
    ASSERT_TRUE(store->Flush().ok());
  }
  auto store = OpenStore();
  ASSERT_TRUE(store->Load().ok());
  EXPECT_EQ(store->rows(), 19);
  EXPECT_FALSE(store->Exists(MakeRid(3)));
  std::string out;
  EXPECT_TRUE(store->ReadRow(MakeRid(4), &out).ok());
}

TEST_F(ColdStorageTest, LaterFrameSupersedesEarlierPlacement) {
  {
    auto store = OpenStore();
    ASSERT_TRUE(store->Place(1, 0, MakeRid(1), Slice(Row(1))).ok());
    ASSERT_TRUE(store->Flush().ok());
    RecordBuilder b(schema_.get());
    b.AddInt64(1).AddString("rewritten");
    ASSERT_TRUE(store->Place(1, 0, MakeRid(1), b.Finish()).ok());
    ASSERT_TRUE(store->Flush().ok());
  }
  auto store = OpenStore();
  ASSERT_TRUE(store->Load().ok());
  EXPECT_EQ(store->rows(), 1);
  std::string out;
  ASSERT_TRUE(store->ReadRow(MakeRid(1), &out).ok());
  RecordView v(schema_.get(), Slice(out));
  EXPECT_EQ(v.GetString(1).ToString(), "rewritten");
}

TEST_F(ColdStorageTest, EraseThenReplaceSurvivesAutoSealAndReload) {
  // Regression: a builder-full auto-seal must drain the erase journal
  // BEFORE appending its segment frame. If the erase frame lands after a
  // segment that re-places the erased rid, Load's file-order replay kills
  // the live row.
  {
    auto store = OpenStore(/*segment_rows=*/8);
    for (int64_t i = 0; i < 8; ++i) {  // fills the builder -> auto-seal
      ASSERT_TRUE(store->Place(1, 0, MakeRid(i), Slice(Row(i))).ok());
    }
    ASSERT_TRUE(store->Flush().ok());
    EXPECT_EQ(store->sealed_segments(), 1);
    // Erase a sealed row (queues its erase-journal entry), then re-place it
    // and fill the builder so it auto-seals with NO Flush in between.
    EXPECT_TRUE(store->Erase(MakeRid(3)));
    RecordBuilder b(schema_.get());
    b.AddInt64(3).AddString("re-placed");
    ASSERT_TRUE(store->Place(1, 0, MakeRid(3), b.Finish()).ok());
    for (int64_t i = 8; i < 15; ++i) {
      ASSERT_TRUE(store->Place(1, 0, MakeRid(i), Slice(Row(i))).ok());
    }
    EXPECT_EQ(store->sealed_segments(), 2);  // the builder auto-sealed
    ASSERT_TRUE(store->Flush().ok());
  }
  auto store = OpenStore(/*segment_rows=*/8);
  ASSERT_TRUE(store->Load().ok());
  EXPECT_EQ(store->rows(), 15);
  std::string out;
  ASSERT_TRUE(store->ReadRow(MakeRid(3), &out).ok())
      << "erase frame resurrected after the re-placing segment";
  RecordView v(schema_.get(), Slice(out));
  EXPECT_EQ(v.GetString(1).ToString(), "re-placed");
}

// --- engine integration -----------------------------------------------------

constexpr int kPartitions = 4;
constexpr int64_t kRows = 2000;

DatabaseOptions ColdOptions(const std::string& dir, int pack_workers) {
  DatabaseOptions options;
  options.in_memory = dir.empty();
  options.data_dir = dir;
  options.buffer_cache_frames = 256;
  options.imrs_cache_bytes = 2ull << 20;
  options.lock_timeout_ms = 100;
  options.cold_columnar = true;
  options.cold_segment_rows = 128;
  options.pack_workers = pack_workers;
  // Keep pack active for the whole drain; freeze the auto-tuner.
  options.ilm.steady_cache_pct = 0.01;
  options.ilm.aggressive_fraction = 0.05;
  options.ilm.pack_cycle_pct = 0.20;
  options.ilm.pack_batch_rows = 16;
  options.ilm.tuning_window_txns = 1ull << 40;
  return options;
}

TableOptions ColdTableOptions() {
  TableOptions topt;
  topt.name = "coldee";
  topt.schema = Schema({
      Column::Int64("id"),
      Column::Int64("part"),
      Column::Int64("amount"),
      Column::String("value", 128),
  });
  topt.primary_key = {0};
  topt.num_partitions = kPartitions;
  topt.partition_column = 1;
  topt.secondary_indexes.push_back(IndexDef{"by_part", {1, 0}, false});
  return topt;
}

std::string ColdValue(int64_t id) {
  return "row-" + std::to_string(id) + "-" + std::string(60, 'c');
}

void InsertRows(Database* db, Table* table) {
  for (int64_t id = 0; id < kRows;) {
    auto txn = db->Begin();
    for (int64_t i = 0; i < 50 && id < kRows; ++i, ++id) {
      RecordBuilder b(&table->schema());
      b.AddInt64(id).AddInt64(id % kPartitions).AddInt64(id * 3)
          .AddString(ColdValue(id));
      ASSERT_TRUE(db->Insert(txn.get(), table, b.Finish()).ok()) << id;
    }
    ASSERT_TRUE(db->Commit(txn.get()).ok());
  }
}

void DrainPack(Database* db) {
  db->RunGcOnce();
  int64_t last_rows = -1;
  int stalled = 0;
  for (int iter = 0; iter < 500 && stalled < 3; ++iter) {
    db->RunIlmTickOnce();
    const int64_t rows = db->GetStats().pack.rows_packed;
    stalled = rows == last_rows ? stalled + 1 : 0;
    last_rows = rows;
  }
}

TEST(ColdEngineTest, PackedRowsLandColdAndStayReadable) {
  auto db = std::move(*Database::Open(ColdOptions("", /*pack_workers=*/1)));
  Table* table = *db->CreateTable(ColdTableOptions());
  InsertRows(db.get(), table);
  DrainPack(db.get());

  ASSERT_GT(db->cold()->rows(), 0) << "pack should relocate rows cold";
  EXPECT_GT(db->cold()->sealed_segments(), 0);
  EXPECT_TRUE(db->ValidateInvariants().ok());

  // Point reads resolve cold homes; writes turn cold rows hot again.
  for (int64_t id = 0; id < kRows; id += 97) {
    auto txn = db->Begin();
    std::string row;
    ASSERT_TRUE(db->SelectByKey(txn.get(), table,
                                table->pk_encoder().KeyForInts({id}), &row)
                    .ok())
        << id;
    RecordView v(&table->schema(), Slice(row));
    EXPECT_EQ(v.GetString(3).ToString(), ColdValue(id)) << id;
    ASSERT_TRUE(db->Commit(txn.get()).ok());
  }
  {
    auto txn = db->Begin();
    ASSERT_TRUE(db->Update(txn.get(), table,
                           table->pk_encoder().KeyForInts({int64_t{4}}),
                           [&](std::string* payload) {
                             RecordEditor e(&table->schema(), Slice(*payload));
                             e.SetString(3, "updated");
                             *payload = e.Encode();
                           })
                    .ok());
    ASSERT_TRUE(db->Delete(txn.get(), table,
                           table->pk_encoder().KeyForInts({int64_t{8}}))
                    .ok());
    ASSERT_TRUE(db->Commit(txn.get()).ok());
  }
  {
    auto txn = db->Begin();
    std::string row;
    ASSERT_TRUE(db->SelectByKey(txn.get(), table,
                                table->pk_encoder().KeyForInts({int64_t{4}}),
                                &row)
                    .ok());
    RecordView v(&table->schema(), Slice(row));
    EXPECT_EQ(v.GetString(3).ToString(), "updated");
    EXPECT_TRUE(db->SelectByKey(txn.get(), table,
                                table->pk_encoder().KeyForInts({int64_t{8}}),
                                &row)
                    .IsNotFound());
    ASSERT_TRUE(db->Commit(txn.get()).ok());
  }
  EXPECT_TRUE(db->ValidateInvariants().ok());
}

TEST(ColdEngineTest, ScanTableMergesHotAndColdUnderProjection) {
  auto db = std::move(*Database::Open(ColdOptions("", /*pack_workers=*/1)));
  Table* table = *db->CreateTable(ColdTableOptions());
  InsertRows(db.get(), table);
  DrainPack(db.get());
  ASSERT_GT(db->cold()->rows(), 0);

  int64_t expected_sum = 0;
  for (int64_t id = 0; id < kRows; ++id) expected_sum += id * 3;

  // Projected scan: only the `amount` column.
  HtapScanOptions proj;
  proj.columns = {2};
  HtapScanStats stats;
  int64_t sum = 0;
  {
    auto txn = db->Begin();
    ASSERT_TRUE(db->ScanTable(txn.get(), table, proj,
                              [&](const HtapRow& row) {
                                sum += row.Int(2);
                                return true;
                              },
                              &stats)
                    .ok());
    ASSERT_TRUE(db->Commit(txn.get()).ok());
  }
  EXPECT_EQ(sum, expected_sum);
  EXPECT_EQ(stats.rows_emitted, kRows);
  EXPECT_EQ(stats.rows_emitted,
            stats.rows_from_imrs + stats.rows_from_cold +
                stats.rows_from_heap);
  EXPECT_GT(stats.rows_from_cold, 0);

  // Projection pushdown must scan strictly fewer cold bytes than a full
  // scan of the same segments (the wide string column is pruned).
  HtapScanStats full_stats;
  {
    auto txn = db->Begin();
    ASSERT_TRUE(db->ScanTable(txn.get(), table, HtapScanOptions{},
                              [](const HtapRow&) { return true; },
                              &full_stats)
                    .ok());
    ASSERT_TRUE(db->Commit(txn.get()).ok());
  }
  EXPECT_EQ(full_stats.rows_emitted, kRows);
  EXPECT_GT(full_stats.bytes_scanned_cold, 0);
  EXPECT_LT(stats.bytes_scanned_cold, full_stats.bytes_scanned_cold);
}

TEST(ColdEngineTest, ColdRowsSurviveCrashRecovery) {
  const std::string dir = ::testing::TempDir() + "/btrim_cold_recovery";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  {
    auto db = std::move(*Database::Open(ColdOptions(dir, 1)));
    Table* table = *db->CreateTable(ColdTableOptions());
    InsertRows(db.get(), table);
    DrainPack(db.get());
    ASSERT_GT(db->cold()->rows(), 0);
    // Crash: drop the Database without checkpoint or clean shutdown.
  }
  auto db = std::move(*Database::Open(ColdOptions(dir, 1)));
  Table* table = *db->CreateTable(ColdTableOptions());
  ASSERT_TRUE(db->Recover().ok());
  EXPECT_TRUE(db->ValidateInvariants().ok());
  for (int64_t id = 0; id < kRows; id += 59) {
    auto txn = db->Begin();
    std::string row;
    Status s = db->SelectByKey(txn.get(), table,
                               table->pk_encoder().KeyForInts({id}), &row);
    ASSERT_TRUE(s.ok()) << "row " << id << ": " << s.ToString();
    RecordView v(&table->schema(), Slice(row));
    EXPECT_EQ(v.GetString(3).ToString(), ColdValue(id)) << id;
    ASSERT_TRUE(db->Commit(txn.get()).ok());
  }
  // New inserts must not collide with recovered cold rids.
  {
    auto txn = db->Begin();
    RecordBuilder b(&table->schema());
    b.AddInt64(kRows + 1).AddInt64(0).AddInt64(0).AddString("fresh");
    ASSERT_TRUE(db->Insert(txn.get(), table, b.Finish()).ok());
    ASSERT_TRUE(db->Commit(txn.get()).ok());
  }
  EXPECT_TRUE(db->ValidateInvariants().ok());
  std::filesystem::remove_all(dir);
}

// Per-partition cold state must not depend on the pack worker count: rows
// are staged rid-ordered per partition and sealed at a deterministic row
// count, so only the cross-partition frame order in the segment file may
// differ between schedules.
TEST(ColdEngineTest, ColumnarEmissionDeterministicAcrossWorkers) {
  using PartitionImage = std::map<uint64_t, std::string>;
  auto fingerprint = [](Database* db) {
    std::map<std::pair<uint32_t, uint32_t>, PartitionImage> image;
    db->cold()->ForEachLive([&](uint32_t table_id, uint32_t partition_id,
                                Rid rid, const std::string& payload) {
      image[{table_id, partition_id}][rid.Encode()] = payload;
    });
    return image;
  };
  auto run = [&](int workers) {
    auto db = std::move(*Database::Open(ColdOptions("", workers)));
    Table* table = *db->CreateTable(ColdTableOptions());
    InsertRows(db.get(), table);
    DrainPack(db.get());
    EXPECT_TRUE(db->ValidateInvariants().ok());
    return fingerprint(db.get());
  };
  auto serial = run(1);
  int64_t total = 0;
  for (const auto& [part, rows] : serial) total += rows.size();
  EXPECT_GT(total, 0) << "workload should produce cold rows";
  EXPECT_EQ(run(4), serial) << "cold state diverged with 4 pack workers";
}

}  // namespace
}  // namespace btrim
