// Tests for the debug-build LockOrderValidator (common/lock_order.h).
//
// The interesting test injects a genuine A->B / B->A inversion across two
// threads using the reserved kTestA/kTestB ranks and asserts the validator
// reports the cycle with both held-lock stacks: the stack of the thread
// that closed the cycle and the stack captured when the reverse edge was
// first observed. The remaining tests pin down the non-goals: consistent
// nesting, same-rank nesting, and unranked locks must all stay silent.
//
// Everything here runs only when BTRIM_LOCK_ORDER_CHECKS is compiled in
// (Debug / sanitizer / torture builds); otherwise the suite skips.

#include "common/lock_order.h"

#include <thread>

#include <gtest/gtest.h>

#include "common/mutex.h"
#include "common/spinlock.h"

namespace btrim {
namespace {

#if !defined(BTRIM_LOCK_ORDER_CHECKS)

TEST(LockOrderTest, ChecksCompiledOut) {
  GTEST_SKIP() << "BTRIM_LOCK_ORDER_CHECKS is off in this build "
                  "(release mode); lock-order validation not compiled in.";
}

#else  // BTRIM_LOCK_ORDER_CHECKS

// tsan models the same potential-deadlock class the validator does, so it
// reports the deliberately inverted std::mutex acquisitions below and fails
// the binary's exit code even though every assertion passes. Skip exactly
// those tests under tsan; default/asan/ubsan/tsa builds keep the coverage.
#if defined(__SANITIZE_THREAD__)
#define BTRIM_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define BTRIM_TSAN_BUILD 1
#endif
#endif
#if defined(BTRIM_TSAN_BUILD)
#define BTRIM_SKIP_INTENTIONAL_INVERSION() \
  GTEST_SKIP() << "intentional mutex inversion; tsan reports it itself"
#else
#define BTRIM_SKIP_INTENTIONAL_INVERSION() (void)0
#endif

class LockOrderTest : public ::testing::Test {
 protected:
  void SetUp() override { LockOrderValidator::Global()->ResetForTest(); }
  // Leave a clean graph behind for whatever runs after us in-process.
  void TearDown() override { LockOrderValidator::Global()->ResetForTest(); }
};

TEST_F(LockOrderTest, ConsistentNestingIsClean) {
  Mutex outer{LockRank::kTestA, "test.outer"};
  Mutex inner{LockRank::kTestB, "test.inner"};
  for (int i = 0; i < 100; ++i) {
    MutexGuard a(outer);
    MutexGuard b(inner);
  }
  EXPECT_EQ(LockOrderValidator::Global()->ViolationCount(), 0)
      << LockOrderValidator::Global()->Report();
}

TEST_F(LockOrderTest, InjectedInversionIsReportedWithBothStacks) {
  BTRIM_SKIP_INTENTIONAL_INVERSION();
  Mutex a{LockRank::kTestA, "test.lock_a"};
  Mutex b{LockRank::kTestB, "test.lock_b"};

  // Thread 1 records the edge A->B; thread 2 then closes the cycle with
  // B->A. Plain join ordering (no concurrent contention needed): the
  // validator flags the *order*, not an actual deadlock.
  std::thread t1([&] {
    MutexGuard ga(a);
    MutexGuard gb(b);
  });
  t1.join();
  std::thread t2([&] {
    MutexGuard gb(b);
    MutexGuard ga(a);
  });
  t2.join();

  auto* v = LockOrderValidator::Global();
  ASSERT_EQ(v->ViolationCount(), 1) << v->Report();

  const auto violations = v->Violations();
  ASSERT_EQ(violations.size(), 1u);
  const auto& viol = violations[0];
  // The cycle was closed by the B->A acquisition.
  EXPECT_EQ(viol.from, LockRank::kTestB);
  EXPECT_EQ(viol.to, LockRank::kTestA);
  // Both sides of the inversion carry the held-lock stacks.
  EXPECT_NE(viol.acquire_stack.find("test.lock_b"), std::string::npos)
      << viol.acquire_stack;
  EXPECT_NE(viol.prior_stack.find("test.lock_a"), std::string::npos)
      << viol.prior_stack;

  const std::string report = v->Report();
  EXPECT_NE(report.find("test_a"), std::string::npos) << report;
  EXPECT_NE(report.find("test_b"), std::string::npos) << report;
  EXPECT_NE(report.find(viol.acquire_stack), std::string::npos) << report;
  EXPECT_NE(report.find(viol.prior_stack), std::string::npos) << report;
}

TEST_F(LockOrderTest, DuplicateInversionRecordedOnce) {
  BTRIM_SKIP_INTENTIONAL_INVERSION();
  Mutex a{LockRank::kTestA, "test.lock_a"};
  Mutex b{LockRank::kTestB, "test.lock_b"};
  {
    MutexGuard ga(a);
    MutexGuard gb(b);
  }
  for (int i = 0; i < 10; ++i) {
    MutexGuard gb(b);
    MutexGuard ga(a);
  }
  // The edge B->A is recorded (and flagged) on first observation only.
  EXPECT_EQ(LockOrderValidator::Global()->ViolationCount(), 1);
}

TEST_F(LockOrderTest, TryAcquireRecordsNoEdgeButJoinsHeldStack) {
  BTRIM_SKIP_INTENTIONAL_INVERSION();
  Mutex a{LockRank::kTestA, "test.lock_a"};
  Mutex b{LockRank::kTestB, "test.lock_b"};
  {
    MutexGuard ga(a);
    MutexGuard gb(b);  // blocking nesting records the edge A->B
  }
  // Reverse nesting through a *successful try-lock* records no edge (it
  // never waited, so it cannot be the blocked hop of a deadlock): clean.
  {
    MutexGuard gb(b);
    ASSERT_TRUE(a.try_lock());
    a.unlock();
  }
  EXPECT_EQ(LockOrderValidator::Global()->ViolationCount(), 0)
      << LockOrderValidator::Global()->Report();
  // But a try-held lock is on the held stack, so a blocking acquisition
  // made under it still records its edge — and this one closes the cycle.
  ASSERT_TRUE(b.try_lock());
  {
    MutexGuard ga(a);
  }
  b.unlock();
  EXPECT_EQ(LockOrderValidator::Global()->ViolationCount(), 1)
      << LockOrderValidator::Global()->Report();
}

TEST_F(LockOrderTest, SameRankNestingIsAllowed) {
  // Sharded lock families nest within one rank by convention (shard index,
  // tree depth); the validator must not flag intra-rank edges.
  SpinLock s1{LockRank::kTestA, "test.shard_0"};
  SpinLock s2{LockRank::kTestA, "test.shard_1"};
  {
    SpinLockGuard g1(s1);
    SpinLockGuard g2(s2);
  }
  {
    SpinLockGuard g2(s2);
    SpinLockGuard g1(s1);
  }
  EXPECT_EQ(LockOrderValidator::Global()->ViolationCount(), 0)
      << LockOrderValidator::Global()->Report();
}

TEST_F(LockOrderTest, UnrankedLocksAreInvisible) {
  BTRIM_SKIP_INTENTIONAL_INVERSION();
  Mutex ranked{LockRank::kTestA, "test.ranked"};
  Mutex unranked;  // kUnranked: never reported to the validator
  {
    MutexGuard gu(unranked);
    MutexGuard gr(ranked);
  }
  {
    MutexGuard gr(ranked);
    MutexGuard gu(unranked);
  }
  EXPECT_EQ(LockOrderValidator::Global()->ViolationCount(), 0)
      << LockOrderValidator::Global()->Report();
}

TEST_F(LockOrderTest, SharedAcquisitionsParticipate) {
  // Read locks take part in ordering too: shared-then-exclusive in reverse
  // order across threads is still an inversion.
  RwSpinLock rw{LockRank::kTestA, "test.rw"};
  Mutex m{LockRank::kTestB, "test.m"};
  std::thread t1([&] {
    RwSpinLockReadGuard g1(rw);
    MutexGuard g2(m);
  });
  t1.join();
  std::thread t2([&] {
    MutexGuard g2(m);
    RwSpinLockReadGuard g1(rw);
  });
  t2.join();
  EXPECT_EQ(LockOrderValidator::Global()->ViolationCount(), 1)
      << LockOrderValidator::Global()->Report();
}

TEST_F(LockOrderTest, OutOfOrderReleaseIsHandled)  {
  // Hand-over-hand release (release outer while holding inner) must not
  // corrupt the thread-local held stack.
  Mutex a{LockRank::kTestA, "test.lock_a"};
  Mutex b{LockRank::kTestB, "test.lock_b"};
  a.lock();
  b.lock();
  a.unlock();
  b.unlock();
  // Now a fresh consistent nesting still works and records no violation.
  {
    MutexGuard ga(a);
    MutexGuard gb(b);
  }
  EXPECT_EQ(LockOrderValidator::Global()->ViolationCount(), 0)
      << LockOrderValidator::Global()->Report();
}

#endif  // BTRIM_LOCK_ORDER_CHECKS

}  // namespace
}  // namespace btrim
