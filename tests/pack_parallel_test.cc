// Determinism tests for the parallel pack pipeline: a pack drain executed
// with N workers must produce exactly the state a 1-worker (inline, serial)
// drain produces. The per-partition budgets are apportioned on the driver
// thread before the fan-out and each partition's queue is drained
// independently under its pack lock, so worker count may change only the
// schedule, never the outcome.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/database.h"

namespace btrim {
namespace {

constexpr int kPartitions = 8;
constexpr int64_t kRows = 4000;

// Post-drain fingerprint of everything pack is allowed to affect.
struct PackOutcome {
  int64_t rows_packed = 0;
  int64_t bytes_packed = 0;
  int64_t rid_map_size = 0;
  std::vector<int64_t> partition_rows_packed;
  std::vector<int64_t> partition_imrs_rows;
};

// Skewed partition assignment (some partitions get twice the rows) so the
// packability-index apportioning hands out genuinely different budgets —
// a uniform spread would let a broken apportioner pass by accident.
int64_t PartitionFor(int64_t id) {
  return (id % 16 < 8) ? id % kPartitions : id % (kPartitions / 2);
}

std::string ValueFor(int64_t id) {
  return "row-" + std::to_string(id) + "-" + std::string(60, 'v');
}

PackOutcome RunWorkload(int pack_workers) {
  DatabaseOptions options;
  options.in_memory = true;
  options.imrs_cache_bytes = 4ull << 20;
  options.pack_workers = pack_workers;
  // Keep pack active (and the TSF off) for the whole drain; freeze the
  // auto-tuner so partition enablement cannot shift mid-test.
  options.ilm.steady_cache_pct = 0.01;
  options.ilm.aggressive_fraction = 0.05;
  options.ilm.pack_cycle_pct = 0.20;
  options.ilm.pack_batch_rows = 16;
  options.ilm.tuning_window_txns = 1ull << 40;
  std::unique_ptr<Database> db = std::move(*Database::Open(options));

  TableOptions topt;
  topt.name = "packee";
  topt.schema = Schema({
      Column::Int64("id"),
      Column::Int64("part"),
      Column::String("value", 128),
  });
  topt.primary_key = {0};
  topt.num_partitions = kPartitions;
  topt.partition_column = 1;
  Table* table = *db->CreateTable(topt);

  for (int64_t id = 0; id < kRows;) {
    auto txn = db->Begin();
    for (int64_t i = 0; i < 50 && id < kRows; ++i, ++id) {
      RecordBuilder b(&table->schema());
      b.AddInt64(id).AddInt64(PartitionFor(id)).AddString(ValueFor(id));
      EXPECT_TRUE(db->Insert(txn.get(), table, b.Finish()).ok()) << id;
    }
    EXPECT_TRUE(db->Commit(txn.get()).ok());
  }

  // Rows enter the ILM queues via the GC pass over freshly committed rows.
  db->RunGcOnce();

  // Drain: tick until pack stops advancing.
  int64_t last_rows = -1;
  int stalled = 0;
  for (int iter = 0; iter < 500 && stalled < 3; ++iter) {
    db->RunIlmTickOnce();
    const int64_t rows = db->GetStats().pack.rows_packed;
    stalled = rows == last_rows ? stalled + 1 : 0;
    last_rows = rows;
  }

  // Whatever worker count ran, the cross-structure invariants must hold and
  // every row must still be readable with its original value.
  EXPECT_TRUE(db->ValidateInvariants().ok());
  for (int64_t id = 0; id < kRows; id += 13) {
    auto txn = db->Begin();
    std::string row;
    Status s = db->SelectByKey(txn.get(), table,
                               table->pk_encoder().KeyForInts({id}), &row);
    EXPECT_TRUE(s.ok()) << "row " << id << ": " << s.ToString();
    if (s.ok()) {
      RecordView view(&table->schema(), row);
      EXPECT_EQ(view.GetString(2), ValueFor(id)) << id;
    }
    EXPECT_TRUE(db->Commit(txn.get()).ok());
  }

  const DatabaseStats stats = db->GetStats();
  PackOutcome out;
  out.rows_packed = stats.pack.rows_packed;
  out.bytes_packed = stats.pack.bytes_packed;
  out.rid_map_size = db->rid_map()->Size();
  for (int p = 0; p < kPartitions; ++p) {
    out.partition_rows_packed.push_back(
        table->partition(p).ilm->metrics.rows_packed.Load());
    out.partition_imrs_rows.push_back(
        table->partition(p).ilm->metrics.imrs_rows.Load());
  }
  return out;
}

void ExpectSameOutcome(const PackOutcome& serial, const PackOutcome& parallel,
                       int workers) {
  SCOPED_TRACE("workers=" + std::to_string(workers));
  EXPECT_EQ(parallel.rows_packed, serial.rows_packed);
  EXPECT_EQ(parallel.bytes_packed, serial.bytes_packed);
  EXPECT_EQ(parallel.rid_map_size, serial.rid_map_size);
  // Per-partition agreement is the apportioning invariant: the UI/CUI/PI
  // split decides each partition's budget on the driver thread, so worker
  // count cannot move bytes between partitions.
  EXPECT_EQ(parallel.partition_rows_packed, serial.partition_rows_packed);
  EXPECT_EQ(parallel.partition_imrs_rows, serial.partition_imrs_rows);
}

TEST(PackParallelTest, SerialDrainActuallyPacks) {
  PackOutcome serial = RunWorkload(1);
  EXPECT_GT(serial.rows_packed, 0);
  EXPECT_GT(serial.bytes_packed, 0);
  EXPECT_LT(serial.rid_map_size, kRows);
  // The skew must be visible in the outcome for the determinism comparison
  // to mean anything.
  int64_t min_packed = serial.partition_rows_packed[0];
  int64_t max_packed = serial.partition_rows_packed[0];
  for (int64_t v : serial.partition_rows_packed) {
    min_packed = std::min(min_packed, v);
    max_packed = std::max(max_packed, v);
  }
  EXPECT_NE(min_packed, max_packed)
      << "workload skew should produce uneven per-partition packing";
}

TEST(PackParallelTest, WorkerCountDoesNotChangeOutcome) {
  PackOutcome serial = RunWorkload(1);
  for (int workers : {2, 4}) {
    PackOutcome parallel = RunWorkload(workers);
    ExpectSameOutcome(serial, parallel, workers);
  }
}

}  // namespace
}  // namespace btrim
