// Multi-threaded stress harness, sized to stay useful under ThreadSanitizer
// on a small machine (build with the `tsan` preset and run via the
// `tsan-stress` test preset; the same binary doubles as a tier-1 test in
// every other build mode).
//
// Two layers:
//   * component stress: the lock-free / finely-locked primitives hammered
//     directly (sharded counters, spinlocks, RID-map, ILM queue, lock
//     manager) — small surfaces where TSan pinpoints ordering bugs;
//   * engine stress: concurrent CRUD and a full TPC-C run with >= 4 driver
//     workers plus live background GC/pack threads, finishing with the
//     cross-structure invariant checker.

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/counters.h"
#include "common/lock_order.h"
#include "common/spinlock.h"
#include "engine/database.h"
#include "ilm/ilm_queue.h"
#include "imrs/rid_map.h"
#include "tpcc/driver.h"
#include "tpcc/loader.h"
#include "txn/lock_manager.h"

namespace btrim {
namespace {

constexpr int kThreads = 4;

void RunThreads(const std::function<void(int)>& body) {
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back(body, t);
  }
  for (auto& th : threads) th.join();
}

// --- component stress -------------------------------------------------------

TEST(ComponentStressTest, ShardedCounterSumsAcrossThreads) {
  constexpr int64_t kOpsPerThread = 20000;
  ShardedCounter counter;
  RunThreads([&](int) {
    for (int64_t i = 0; i < kOpsPerThread; ++i) counter.Inc();
  });
  EXPECT_EQ(counter.Load(), kThreads * kOpsPerThread);
}

TEST(ComponentStressTest, SpinLockProtectsPlainCounter) {
  constexpr int64_t kOpsPerThread = 20000;
  SpinLock lock;
  int64_t plain = 0;  // unsynchronized on purpose; the lock is the fence
  RunThreads([&](int) {
    for (int64_t i = 0; i < kOpsPerThread; ++i) {
      SpinLockGuard guard(lock);
      ++plain;
    }
  });
  EXPECT_EQ(plain, kThreads * kOpsPerThread);
}

TEST(ComponentStressTest, RwSpinLockReadersSeeConsistentPairs) {
  constexpr int64_t kWrites = 10000;
  RwSpinLock latch;
  int64_t a = 0, b = 0;  // writers keep a == b inside the latch
  std::atomic<bool> stop{false};

  std::vector<std::thread> readers;
  for (int t = 0; t < kThreads - 1; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        latch.lock_shared();
        EXPECT_EQ(a, b);
        latch.unlock_shared();
      }
    });
  }
  for (int64_t i = 0; i < kWrites; ++i) {
    latch.lock();
    ++a;
    ++b;
    latch.unlock();
  }
  stop.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();
  EXPECT_EQ(a, kWrites);
}

TEST(ComponentStressTest, RidMapConcurrentInsertLookupErase) {
  constexpr int64_t kRowsPerThread = 4000;
  RidMap map(64);
  // Each thread owns a disjoint RID range (distinct file ids) and a private
  // row arena; all threads additionally read each other's ranges. ImrsRow
  // holds atomics and is neither copyable nor movable, hence the raw arrays.
  std::vector<std::unique_ptr<ImrsRow[]>> arenas;
  for (int t = 0; t < kThreads; ++t) {
    arenas.push_back(std::make_unique<ImrsRow[]>(kRowsPerThread));
    for (int64_t i = 0; i < kRowsPerThread; ++i) {
      arenas[t][i].rid = Rid{static_cast<uint16_t>(t + 1),
                             static_cast<uint32_t>(i / 64),
                             static_cast<uint16_t>(i % 64)};
    }
  }
  RunThreads([&](int t) {
    std::mt19937_64 rnd(t);
    for (int64_t i = 0; i < kRowsPerThread; ++i) {
      ImrsRow* row = &arenas[t][i];
      map.Insert(row->rid, row);
      // Random cross-thread lookup: either outcome is legal, but the
      // returned pointer must be the owner's row.
      const int ot = static_cast<int>(rnd() % kThreads);
      const int64_t oi = static_cast<int64_t>(rnd() % kRowsPerThread);
      ImrsRow* seen = map.Lookup(arenas[ot][oi].rid);
      if (seen != nullptr) {
        EXPECT_EQ(seen, &arenas[ot][oi]);
      }
      if (i % 3 == 0) {
        EXPECT_TRUE(map.Erase(row->rid));
        EXPECT_EQ(map.Lookup(row->rid), nullptr);
      }
    }
  });
  int64_t expected = 0;
  for (int t = 0; t < kThreads; ++t) {
    for (int64_t i = 0; i < kRowsPerThread; ++i) {
      if (i % 3 != 0) ++expected;
    }
  }
  EXPECT_EQ(map.Size(), expected);
}

TEST(ComponentStressTest, IlmQueueConcurrentPopPush) {
  constexpr int kRows = 256;
  constexpr int64_t kOpsPerThread = 10000;
  IlmQueue queue;
  std::vector<ImrsRow> rows(kRows);
  for (auto& r : rows) queue.PushTail(&r);

  std::atomic<bool> stop{false};
  std::thread walker([&] {
    // Concurrent Size/ForEach readers (the instrumentation paths).
    while (!stop.load(std::memory_order_acquire)) {
      int64_t n = 0;
      queue.ForEach([&n](ImrsRow*) {
        ++n;
        return true;
      });
      EXPECT_LE(n, kRows);
      EXPECT_GE(queue.Size(), 0);
    }
  });
  RunThreads([&](int) {
    for (int64_t i = 0; i < kOpsPerThread; ++i) {
      ImrsRow* r = queue.PopHead();
      if (r != nullptr) {
        EXPECT_FALSE(r->HasFlag(kRowInQueue));
        queue.PushTail(r);
      }
    }
  });
  stop.store(true, std::memory_order_release);
  walker.join();
  EXPECT_EQ(queue.Size(), kRows);
  int64_t n = 0;
  queue.ForEach([&n](ImrsRow*) {
    ++n;
    return true;
  });
  EXPECT_EQ(n, kRows);
}

TEST(ComponentStressTest, LockManagerMutualExclusion) {
  constexpr int kSlots = 16;
  constexpr int64_t kOpsPerThread = 2000;
  LockManager lm;
  int64_t slots[kSlots] = {0};  // plain writes; the row lock is the fence
  std::atomic<uint64_t> next_txn{1};
  RunThreads([&](int t) {
    std::mt19937_64 rnd(100 + t);
    for (int64_t i = 0; i < kOpsPerThread; ++i) {
      const uint64_t txn = next_txn.fetch_add(1);
      const uint64_t slot = rnd() % kSlots;
      Status s = lm.Acquire(txn, slot, LockMode::kExclusive, /*timeout_ms=*/500);
      ASSERT_TRUE(s.ok()) << s.ToString();
      ++slots[slot];
      lm.Release(txn, slot);
    }
  });
  int64_t total = 0;
  for (int64_t v : slots) total += v;
  EXPECT_EQ(total, kThreads * kOpsPerThread);
}

// --- engine stress ----------------------------------------------------------

class EngineStressTest : public ::testing::Test {
 protected:
  void Open() {
    DatabaseOptions options;
    options.buffer_cache_frames = 1024;
    options.imrs_cache_bytes = 16 << 20;
    options.lock_timeout_ms = 200;
    options.background_interval_us = 200;
    Result<std::unique_ptr<Database>> opened = Database::Open(options);
    ASSERT_TRUE(opened.ok());
    db_ = std::move(*opened);

    TableOptions topt;
    topt.name = "kv";
    topt.schema = Schema({
        Column::Int64("id"),
        Column::Int64("group_id"),
        Column::String("value", 64),
    });
    topt.primary_key = {0};
    Result<Table*> created = db_->CreateTable(topt);
    ASSERT_TRUE(created.ok());
    table_ = *created;
  }

  std::string Record(int64_t id, int64_t group, const std::string& value) {
    RecordBuilder b(&table_->schema());
    b.AddInt64(id).AddInt64(group).AddString(value);
    return b.Finish().ToString();
  }

  std::unique_ptr<Database> db_;
  Table* table_ = nullptr;
};

TEST_F(EngineStressTest, ConcurrentCrudWithBackgroundThreads) {
  Open();
  db_->StartBackground();

  constexpr int64_t kKeySpace = 400;
  constexpr int64_t kOpsPerThread = 2500;
  std::atomic<int64_t> committed{0};

  RunThreads([&](int t) {
    std::mt19937_64 rnd(1000 + t);
    for (int64_t i = 0; i < kOpsPerThread; ++i) {
      const int64_t id = static_cast<int64_t>(rnd() % kKeySpace);
      const std::string pk = table_->pk_encoder().KeyForInts({id});
      auto txn = db_->Begin();
      Status s;
      switch (rnd() % 4) {
        case 0:
          s = db_->Insert(txn.get(), table_, Record(id, id % 5, "ins"));
          break;
        case 1:
          s = db_->Update(txn.get(), table_, pk, [&](std::string* payload) {
            RecordEditor e(&table_->schema(), Slice(*payload));
            e.SetString(2, "upd");
            *payload = e.Encode();
          });
          break;
        case 2: {
          std::string out;
          s = db_->SelectByKey(txn.get(), table_, pk, &out);
          break;
        }
        default:
          s = db_->Delete(txn.get(), table_, pk);
          break;
      }
      // Conflicts (AlreadyExists / NotFound / lock timeouts) are expected
      // under contention; only commit cleanly-executed work.
      if (s.ok()) {
        if (db_->Commit(txn.get()).ok()) committed.fetch_add(1);
      } else {
        Status a = db_->Abort(txn.get());
        (void)a;
      }
    }
  });

  db_->StopBackground();
  EXPECT_GT(committed.load(), 0);

  ValidateReport report;
  Status v = db_->ValidateInvariants(&report);
  EXPECT_TRUE(v.ok()) << v.ToString();
}

// The group-commit hammer: eight workers on a file-backed database, every
// commit riding the batched-fsync path, with aborts mixed in so the
// committer sees gaps between staged groups. TSan covers the leader/follower
// handoff (mutex + condvar + the lock-released append/sync window); the
// invariant checker then proves the engine state matches what committed.
TEST(GroupCommitStressTest, EightWorkerCommitAbortHammer) {
  constexpr int kWorkers = 8;
  const std::string dir =
      ::testing::TempDir() + "/btrim_stress_group_commit";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  DatabaseOptions options;
  options.in_memory = false;
  options.data_dir = dir;
  options.buffer_cache_frames = 1024;
  options.imrs_cache_bytes = 32 << 20;
  options.lock_timeout_ms = 200;
  options.background_interval_us = 200;
  options.durability.policy = DurabilityPolicy::kGroupCommit;
  options.durability.max_batch_groups = kWorkers;
  options.durability.max_group_latency_us = 100;
  std::unique_ptr<Database> db = std::move(*Database::Open(options));

  TableOptions topt;
  topt.name = "kv";
  topt.schema = Schema({
      Column::Int64("id"),
      Column::Int64("group_id"),
      Column::String("value", 64),
  });
  topt.primary_key = {0};
  Table* table = *db->CreateTable(topt);

  db->StartBackground();

  constexpr int64_t kKeySpace = 512;
  constexpr int64_t kOpsPerThread = 600;
  std::atomic<int64_t> committed{0};
  std::atomic<int64_t> aborted{0};

  std::vector<std::thread> threads;
  threads.reserve(kWorkers);
  for (int t = 0; t < kWorkers; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937_64 rnd(7000 + t);
      for (int64_t i = 0; i < kOpsPerThread; ++i) {
        const int64_t id = static_cast<int64_t>(rnd() % kKeySpace);
        const std::string pk = table->pk_encoder().KeyForInts({id});
        auto txn = db->Begin();
        Status s;
        if (rnd() % 2 == 0) {
          RecordBuilder b(&table->schema());
          b.AddInt64(id).AddInt64(t).AddString("w" + std::to_string(t));
          s = db->Insert(txn.get(), table, b.Finish());
        } else {
          s = db->Update(txn.get(), table, pk, [&](std::string* payload) {
            RecordEditor e(&table->schema(), Slice(*payload));
            e.SetString(2, "u" + std::to_string(t));
            *payload = e.Encode();
          });
        }
        // Deliberate abort mix: every 5th clean transaction rolls back, so
        // batches form from an irregular committer population.
        if (s.ok() && i % 5 != 0) {
          if (db->Commit(txn.get()).ok()) committed.fetch_add(1);
        } else {
          Status a = db->Abort(txn.get());
          (void)a;
          aborted.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  db->StopBackground();
  EXPECT_GT(committed.load(), 0);
  EXPECT_GT(aborted.load(), 0);

  // The whole point: far fewer device syncs than commits.
  DatabaseStats stats = db->GetStats();
  const int64_t syncs = stats.syslogs.syncs + stats.sysimrslogs.syncs;
  EXPECT_LT(syncs, committed.load());
  EXPECT_GT(stats.sysimrslogs_commit.GroupsPerBatch(), 1.0);

  ValidateReport report;
  Status v = db->ValidateInvariants(&report);
  EXPECT_TRUE(v.ok()) << v.ToString();

  db.reset();
  std::filesystem::remove_all(dir);
}

TEST(TpccStressTest, DriverWithFourWorkersStaysConsistent) {
  DatabaseOptions options;
  options.buffer_cache_frames = 2048;
  options.imrs_cache_bytes = 64 << 20;
  options.lock_timeout_ms = 200;
  options.background_interval_us = 500;
  std::unique_ptr<Database> db = std::move(*Database::Open(options));

  tpcc::Scale scale;
  scale.warehouses = 2;
  scale.districts_per_warehouse = 4;
  scale.customers_per_district = 30;
  scale.items = 100;
  scale.orders_per_district = 30;

  Result<tpcc::Tables> tables = tpcc::CreateTables(db.get(), scale);
  ASSERT_TRUE(tables.ok()) << tables.status().ToString();
  ASSERT_TRUE(tpcc::LoadDatabase(db.get(), *tables, scale).ok());

  tpcc::TpccContext ctx;
  ctx.db = db.get();
  ctx.tables = *tables;
  ctx.scale = scale;
  ctx.next_history_id = static_cast<int64_t>(scale.warehouses) *
                            scale.districts_per_warehouse *
                            scale.customers_per_district +
                        1;

  db->StartBackground();

  tpcc::DriverOptions dopt;
  dopt.workers = 4;  // the ISSUE floor: TSan-clean with >= 4 driver threads
  dopt.total_txns = 2000;
  dopt.window_txns = 0;
  tpcc::TpccDriver driver(&ctx, dopt);
  tpcc::DriverStats stats = driver.Run();
  // Workers already past the admission check may commit a few extra.
  EXPECT_GE(stats.committed, dopt.total_txns);

  db->StopBackground();

  ValidateReport report;
  Status v = db->ValidateInvariants(&report);
  EXPECT_TRUE(v.ok()) << v.ToString();
  EXPECT_GT(report.rows_checked, 0);
}

// The parallel-pack hammer: eight TPC-C driver threads racing four pack
// workers plus the GC/ILM background threads, with the steady line pushed
// low enough that pack cycles run throughout. TSan covers the new fan-out
// machinery end to end — ThreadPool batch handoff, per-partition pack
// locks, the row reclaim-claim arbitration against GC, and the
// background_rw_ quiescence gate the final invariant check rides on.
TEST(TpccStressTest, EightWorkersAgainstParallelPack) {
  DatabaseOptions options;
  options.buffer_cache_frames = 2048;
  options.imrs_cache_bytes = 16 << 20;
  options.lock_timeout_ms = 200;
  options.background_interval_us = 200;
  options.pack_workers = 4;
  // Keep the pack pipeline hot for the whole run instead of only after the
  // cache fills: pack activates just above 5% utilization and moves a big
  // slice per cycle.
  options.ilm.steady_cache_pct = 0.05;
  options.ilm.aggressive_fraction = 0.05;
  options.ilm.pack_cycle_pct = 0.20;
  std::unique_ptr<Database> db = std::move(*Database::Open(options));

  tpcc::Scale scale;
  scale.warehouses = 2;
  scale.districts_per_warehouse = 4;
  scale.customers_per_district = 30;
  scale.items = 100;
  scale.orders_per_district = 30;

  Result<tpcc::Tables> tables = tpcc::CreateTables(db.get(), scale);
  ASSERT_TRUE(tables.ok()) << tables.status().ToString();
  ASSERT_TRUE(tpcc::LoadDatabase(db.get(), *tables, scale).ok());

  tpcc::TpccContext ctx;
  ctx.db = db.get();
  ctx.tables = *tables;
  ctx.scale = scale;
  ctx.next_history_id = static_cast<int64_t>(scale.warehouses) *
                            scale.districts_per_warehouse *
                            scale.customers_per_district +
                        1;

  db->StartBackground();

  tpcc::DriverOptions dopt;
  dopt.workers = 8;
  dopt.total_txns = 2000;
  dopt.window_txns = 0;
  tpcc::TpccDriver driver(&ctx, dopt);
  tpcc::DriverStats stats = driver.Run();
  EXPECT_GE(stats.committed, dopt.total_txns);

  db->StopBackground();

  // The hammer is pointless if pack never fired.
  DatabaseStats dbstats = db->GetStats();
  EXPECT_GT(dbstats.pack.rows_packed, 0);

  ValidateReport report;
  Status v = db->ValidateInvariants(&report);
  EXPECT_TRUE(v.ok()) << v.ToString();
  EXPECT_GT(report.rows_checked, 0);
}

// Registered last so it runs after every hammer above: in debug/sanitizer
// builds the lock-order validator has watched every acquisition the whole
// suite made, and the acquisition graph must have stayed cycle-free.
TEST(ZLockOrderHygiene, NoCyclesObservedAcrossSuite) {
#if defined(BTRIM_LOCK_ORDER_CHECKS)
  auto* validator = LockOrderValidator::Global();
  EXPECT_EQ(validator->ViolationCount(), 0) << validator->Report();
#else
  GTEST_SKIP() << "BTRIM_LOCK_ORDER_CHECKS off (release build)";
#endif
}

}  // namespace
}  // namespace btrim
