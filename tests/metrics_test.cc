// Observability-layer tests: registry registration/lookup semantics,
// snapshot-at-unregistration, JSON export schema, time-series sampler
// windowing under an injected clock, trace-ring wraparound, and a
// concurrency hammer (increment + snapshot + record) meant to run under
// TSan.

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics_io.h"
#include "obs/metrics_registry.h"
#include "obs/time_series_sampler.h"
#include "obs/trace_ring.h"

namespace btrim {
namespace obs {
namespace {

// --- registry ---------------------------------------------------------------

TEST(MetricsRegistryTest, RegisterLookupRoundTrip) {
  MetricsRegistry registry;
  ShardedCounter counter;
  AtomicGauge gauge;
  LatencyHistogram hist;
  MetricLabels labels{"wal", "", "", ""};

  ASSERT_TRUE(registry.RegisterCounter("wal.syncs", labels, &counter).ok());
  ASSERT_TRUE(registry.RegisterGauge("wal.depth", labels, &gauge).ok());
  ASSERT_TRUE(registry.RegisterHistogram("wal.latency_us", labels, &hist).ok());
  ASSERT_TRUE(registry
                  .RegisterGaugeFn("wal.derived", labels,
                                   [] { return int64_t{41}; })
                  .ok());
  EXPECT_EQ(registry.size(), 4u);

  counter.Add(3);
  gauge.Set(-7);
  hist.Record(100);
  hist.Record(100);

  MetricSample sample;
  ASSERT_TRUE(registry.Lookup("wal.syncs", labels, &sample));
  EXPECT_EQ(sample.type, MetricType::kCounter);
  EXPECT_EQ(sample.value, 3);
  EXPECT_FALSE(sample.retained);
  ASSERT_TRUE(registry.Lookup("wal.depth", labels, &sample));
  EXPECT_EQ(sample.value, -7);
  ASSERT_TRUE(registry.Lookup("wal.latency_us", labels, &sample));
  EXPECT_EQ(sample.type, MetricType::kHistogram);
  EXPECT_EQ(sample.value, 2);  // histograms report the sample count
  ASSERT_TRUE(registry.Lookup("wal.derived", labels, &sample));
  EXPECT_EQ(sample.value, 41);

  EXPECT_FALSE(registry.Lookup("wal.nope", labels, &sample));
  EXPECT_FALSE(registry.Lookup("wal.syncs", MetricLabels{"page", "", "", ""},
                               &sample));
}

TEST(MetricsRegistryTest, DoubleRegisterIsAlreadyExists) {
  MetricsRegistry registry;
  ShardedCounter a, b;
  MetricLabels labels{"wal", "", "", ""};
  ASSERT_TRUE(registry.RegisterCounter("wal.syncs", labels, &a).ok());
  Status dup = registry.RegisterCounter("wal.syncs", labels, &b);
  EXPECT_TRUE(dup.IsAlreadyExists()) << dup.ToString();

  // Same name under different labels is a distinct metric.
  EXPECT_TRUE(registry
                  .RegisterCounter("wal.syncs", MetricLabels{"imrs", "", "", ""},
                                   &b)
                  .ok());
}

TEST(MetricsRegistryTest, UnregisterRetainsFinalValue) {
  MetricsRegistry registry;
  MetricLabels labels{"ilm", "orders", "0", ""};
  {
    ShardedCounter counter;
    ASSERT_TRUE(
        registry.RegisterCounter("partition.rows_packed", labels, &counter)
            .ok());
    counter.Add(17);
    registry.Unregister("partition.rows_packed", labels);
    // `counter` dies here; the registry must not touch it again.
  }
  MetricSample sample;
  ASSERT_TRUE(registry.Lookup("partition.rows_packed", labels, &sample));
  EXPECT_TRUE(sample.retained);
  EXPECT_EQ(sample.value, 17);

  // Registering over a retained entry replaces it with a live one.
  ShardedCounter fresh;
  ASSERT_TRUE(
      registry.RegisterCounter("partition.rows_packed", labels, &fresh).ok());
  ASSERT_TRUE(registry.Lookup("partition.rows_packed", labels, &sample));
  EXPECT_FALSE(sample.retained);
  EXPECT_EQ(sample.value, 0);
}

TEST(MetricsRegistryTest, UnregisterMatchingUsesWildcards) {
  MetricsRegistry registry;
  ShardedCounter c0, c1, other;
  ASSERT_TRUE(registry
                  .RegisterCounter("partition.rows_packed",
                                   MetricLabels{"ilm", "orders", "0", ""}, &c0)
                  .ok());
  ASSERT_TRUE(registry
                  .RegisterCounter("partition.imrs_rows",
                                   MetricLabels{"ilm", "orders", "0", ""}, &c1)
                  .ok());
  ASSERT_TRUE(registry
                  .RegisterCounter("partition.rows_packed",
                                   MetricLabels{"ilm", "orders", "1", ""}, &other)
                  .ok());
  c0.Add(5);

  MetricLabels match;
  match.table = "orders";
  match.partition = "0";
  registry.UnregisterMatching(match);

  MetricSample sample;
  ASSERT_TRUE(registry.Lookup("partition.rows_packed",
                              MetricLabels{"ilm", "orders", "0", ""}, &sample));
  EXPECT_TRUE(sample.retained);
  EXPECT_EQ(sample.value, 5);
  ASSERT_TRUE(registry.Lookup("partition.imrs_rows",
                              MetricLabels{"ilm", "orders", "0", ""}, &sample));
  EXPECT_TRUE(sample.retained);
  // The sibling partition stays live.
  ASSERT_TRUE(registry.Lookup("partition.rows_packed",
                              MetricLabels{"ilm", "orders", "1", ""}, &sample));
  EXPECT_FALSE(sample.retained);
}

TEST(MetricsRegistryTest, SnapshotIsDeterministicallyOrdered) {
  MetricsRegistry registry;
  ShardedCounter a, b, c;
  ASSERT_TRUE(
      registry.RegisterCounter("z.last", MetricLabels{"s", "", "", ""}, &a).ok());
  ASSERT_TRUE(
      registry.RegisterCounter("a.first", MetricLabels{"s", "", "", ""}, &b).ok());
  ASSERT_TRUE(
      registry.RegisterCounter("m.mid", MetricLabels{"s", "", "", ""}, &c).ok());
  std::vector<MetricSample> snap = registry.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "a.first");
  EXPECT_EQ(snap[1].name, "m.mid");
  EXPECT_EQ(snap[2].name, "z.last");
}

// --- JSON export ------------------------------------------------------------

TEST(MetricsJsonTest, ExportSchemaRoundTrip) {
  MetricsRegistry registry;
  ShardedCounter counter;
  LatencyHistogram hist;
  ASSERT_TRUE(registry
                  .RegisterCounter("pack.cycles",
                                   MetricLabels{"ilm", "orders", "0", ""},
                                   &counter)
                  .ok());
  ASSERT_TRUE(registry
                  .RegisterHistogram("commit.latency_us",
                                     MetricLabels{"syslogs", "", "", ""}, &hist)
                  .ok());
  counter.Add(9);
  hist.Record(64);

  const std::string json = registry.ToJson();
  // The stable schema: name, type, labels{subsystem,table,partition}, value.
  EXPECT_NE(json.find("\"name\": \"pack.cycles\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"type\": \"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"subsystem\": \"ilm\""), std::string::npos);
  EXPECT_NE(json.find("\"table\": \"orders\""), std::string::npos);
  EXPECT_NE(json.find("\"partition\": \"0\""), std::string::npos);
  EXPECT_NE(json.find("\"value\": 9"), std::string::npos);
  EXPECT_NE(json.find("\"type\": \"histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\""), std::string::npos);

  // String escaping survives hostile label content.
  std::string out;
  AppendJsonString(&out, "he said \"hi\"\n");
  EXPECT_EQ(out, "\"he said \\\"hi\\\"\\n\"");
}

TEST(MetricsJsonTest, MetricsDocumentCombinesMetaRegistryAndSeries) {
  MetricsRegistry registry;
  ShardedCounter counter;
  ASSERT_TRUE(registry
                  .RegisterCounter("txn.committed", MetricLabels{"txn", "", "", ""},
                                   &counter)
                  .ok());
  TimeSeriesSampler sampler(&registry, {});
  sampler.SampleNow(500);

  const std::string doc = BuildMetricsDocument(
      {{"bench", "tpcc", false}, {"committed", "500", true}}, registry,
      &sampler);
  EXPECT_NE(doc.find("\"bench\": \"tpcc\""), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"committed\": 500"), std::string::npos);
  EXPECT_NE(doc.find("\"metrics\": "), std::string::npos);
  EXPECT_NE(doc.find("\"series\": "), std::string::npos);
  EXPECT_NE(doc.find("\"marker\": 500"), std::string::npos);
}

// --- time-series sampler ----------------------------------------------------

TEST(TimeSeriesSamplerTest, WindowingIsDeterministicUnderFakeClock) {
  MetricsRegistry registry;
  ShardedCounter committed;
  ASSERT_TRUE(registry
                  .RegisterCounter("txn.committed", MetricLabels{"txn", "", "", ""},
                                   &committed)
                  .ok());
  TimeSeriesSampler sampler(&registry, {});
  int64_t fake_now = 0;
  sampler.SetClockForTest([&fake_now] { return fake_now; });

  for (int window = 1; window <= 3; ++window) {
    committed.Add(1000);
    fake_now = window * 250000;
    EXPECT_EQ(sampler.SampleNow(window * 1000), window - 1);
  }

  std::vector<TimeSeriesSampler::Sample> samples = sampler.Samples();
  ASSERT_EQ(samples.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(samples[i].seq, i);
    EXPECT_EQ(samples[i].wall_us, (i + 1) * 250000);
    EXPECT_EQ(samples[i].marker, (i + 1) * 1000);
    ASSERT_EQ(samples[i].metrics.size(), 1u);
    EXPECT_EQ(samples[i].metrics[0].value, (i + 1) * 1000);
  }
}

TEST(TimeSeriesSamplerTest, RingKeepsNewestCapacitySamples) {
  MetricsRegistry registry;
  TimeSeriesSampler::Options options;
  options.capacity = 4;
  TimeSeriesSampler sampler(&registry, options);
  for (int i = 0; i < 10; ++i) sampler.SampleNow(i);

  std::vector<TimeSeriesSampler::Sample> samples = sampler.Samples();
  ASSERT_EQ(samples.size(), 4u);  // oldest windows dropped off
  EXPECT_EQ(sampler.total_samples(), 10);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(samples[i].seq, 6 + i);  // oldest first
    EXPECT_EQ(samples[i].marker, 6 + i);
  }
}

TEST(TimeSeriesSamplerTest, CadenceThreadSamplesWithoutMarkers) {
  MetricsRegistry registry;
  TimeSeriesSampler::Options options;
  options.interval_us = 200;
  TimeSeriesSampler sampler(&registry, options);
  sampler.Start();
  while (sampler.total_samples() < 3) std::this_thread::yield();
  sampler.Stop();
  std::vector<TimeSeriesSampler::Sample> samples = sampler.Samples();
  ASSERT_GE(samples.size(), 3u);
  for (const auto& s : samples) EXPECT_EQ(s.marker, -1);
}

// --- trace ring -------------------------------------------------------------

TEST(TraceRingTest, WraparoundKeepsNewestEvents) {
  TraceRing ring(8);  // rounded to a power of two
  for (int i = 0; i < 30; ++i) {
    ring.RecordAt("evt", "test", /*ts_us=*/i, /*dur_us=*/1, /*arg1=*/i);
  }
  std::vector<TraceEvent> events = ring.Snapshot();
  ASSERT_EQ(events.size(), 8u);
  EXPECT_EQ(ring.total_recorded(), 30);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].arg1, 22 + static_cast<int64_t>(i));  // newest 8
  }

  const std::string json = ring.ToChromeJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"evt\""), std::string::npos);

  ring.Reset();
  EXPECT_TRUE(ring.Snapshot().empty());
}

TEST(TraceRingTest, SpanRecordsItsLifetime) {
  TraceRing ring(16);
  {
    TraceSpan span(&ring, "checkpoint", "engine");
    span.set_args(3, 4);
  }
  std::vector<TraceEvent> events = ring.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "checkpoint");
  EXPECT_EQ(events[0].arg1, 3);
  EXPECT_EQ(events[0].arg2, 4);
  EXPECT_GE(events[0].dur_us, 0);
}

// --- concurrency hammer (run under TSan) ------------------------------------

TEST(ObservabilityConcurrencyTest, IncrementSnapshotRecordHammer) {
  MetricsRegistry registry;
  ShardedCounter counters[4];
  LatencyHistogram hist;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(registry
                    .RegisterCounter("hammer.c" + std::to_string(i),
                                     MetricLabels{"test", "", "", ""},
                                     &counters[i])
                    .ok());
  }
  ASSERT_TRUE(registry
                  .RegisterHistogram("hammer.lat",
                                     MetricLabels{"test", "", "", ""}, &hist)
                  .ok());
  TimeSeriesSampler sampler(&registry, {});
  TraceRing ring(64);

  constexpr int kWriters = 4;
  constexpr int kOpsPerWriter = 20000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerWriter; ++i) {
        counters[t].Add(1);
        hist.Record(i & 1023);
        ring.Record("hammer", "test", /*dur_us=*/1, /*arg1=*/i);
      }
    });
  }
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      (void)registry.Snapshot();
      (void)sampler.SampleNow(-1);
      (void)ring.Snapshot();
      (void)registry.ToJson();
    }
  });
  for (auto& th : threads) th.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  // Quiescent totals are exact.
  int64_t total = 0;
  for (const MetricSample& s : registry.Snapshot()) {
    if (s.name.rfind("hammer.c", 0) == 0) total += s.value;
  }
  EXPECT_EQ(total, int64_t{kWriters} * kOpsPerWriter);
  EXPECT_EQ(ring.total_recorded(), int64_t{kWriters} * kOpsPerWriter);
}

}  // namespace
}  // namespace obs
}  // namespace btrim
