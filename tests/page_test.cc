// Unit tests for the page store: slotted pages, devices, the buffer cache,
// and heap files.

#include <filesystem>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "page/buffer_cache.h"
#include "page/device.h"
#include "page/heap_file.h"
#include "page/slotted_page.h"

namespace btrim {
namespace {

// --- Rid / PageId -------------------------------------------------------------

TEST(RidTest, EncodeDecodeRoundTrip) {
  Rid r{7, 123456, 42};
  Rid d = Rid::Decode(r.Encode());
  EXPECT_EQ(d, r);
  EXPECT_EQ(d.page_id(), (PageId{7, 123456}));
}

TEST(RidTest, NullRid) {
  EXPECT_TRUE(kNullRid.IsNull());
  EXPECT_FALSE((Rid{1, 0, 0}).IsNull());
}

// --- SlottedPage ----------------------------------------------------------------

class SlottedPageTest : public ::testing::Test {
 protected:
  SlottedPageTest() : page_(buf_) { page_.Init(); }
  char buf_[kPageSize] = {};
  SlottedPage page_;
};

TEST_F(SlottedPageTest, InitializedEmpty) {
  EXPECT_TRUE(page_.IsInitialized());
  EXPECT_EQ(page_.SlotCount(), 0);
  EXPECT_EQ(page_.LiveRows(), 0);
  EXPECT_FALSE(SlottedPage(buf_ + 0).IsOccupied(0));
}

TEST_F(SlottedPageTest, ZeroedBufferIsUninitialized) {
  char zeroed[kPageSize] = {};
  EXPECT_FALSE(SlottedPage(zeroed).IsInitialized());
}

TEST_F(SlottedPageTest, InsertAndRead) {
  ASSERT_TRUE(page_.InsertAt(0, "hello").ok());
  Result<Slice> row = page_.ReadAt(0);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->ToString(), "hello");
  EXPECT_EQ(page_.LiveRows(), 1);
}

TEST_F(SlottedPageTest, InsertAtArbitrarySlotExtendsDirectory) {
  ASSERT_TRUE(page_.InsertAt(5, "row5").ok());
  EXPECT_EQ(page_.SlotCount(), 6);
  EXPECT_FALSE(page_.IsOccupied(0));
  EXPECT_TRUE(page_.IsOccupied(5));
  // Earlier slots can be filled later (place-by-RID).
  ASSERT_TRUE(page_.InsertAt(2, "row2").ok());
  EXPECT_EQ(page_.ReadAt(2)->ToString(), "row2");
  EXPECT_EQ(page_.ReadAt(5)->ToString(), "row5");
}

TEST_F(SlottedPageTest, DoubleInsertRejected) {
  ASSERT_TRUE(page_.InsertAt(1, "a").ok());
  EXPECT_TRUE(page_.InsertAt(1, "b").IsInvalidArgument());
}

TEST_F(SlottedPageTest, ReadEmptySlotIsNotFound) {
  EXPECT_TRUE(page_.ReadAt(0).status().IsNotFound());
  ASSERT_TRUE(page_.InsertAt(0, "x").ok());
  EXPECT_TRUE(page_.ReadAt(1).status().IsNotFound());
}

TEST_F(SlottedPageTest, DeleteFreesSlot) {
  ASSERT_TRUE(page_.InsertAt(0, "gone").ok());
  ASSERT_TRUE(page_.DeleteAt(0).ok());
  EXPECT_TRUE(page_.ReadAt(0).status().IsNotFound());
  EXPECT_EQ(page_.LiveRows(), 0);
  // Slot can be reused.
  ASSERT_TRUE(page_.InsertAt(0, "back").ok());
  EXPECT_EQ(page_.ReadAt(0)->ToString(), "back");
}

TEST_F(SlottedPageTest, DeleteEmptySlotIsNotFound) {
  EXPECT_TRUE(page_.DeleteAt(0).IsNotFound());
}

TEST_F(SlottedPageTest, UpdateShrinkAndGrow) {
  ASSERT_TRUE(page_.InsertAt(0, "abcdefgh").ok());
  ASSERT_TRUE(page_.UpdateAt(0, "xy").ok());
  EXPECT_EQ(page_.ReadAt(0)->ToString(), "xy");
  ASSERT_TRUE(page_.UpdateAt(0, "0123456789012345").ok());
  EXPECT_EQ(page_.ReadAt(0)->ToString(), "0123456789012345");
}

TEST_F(SlottedPageTest, CompactionReclaimsGarbage) {
  const std::string big(1000, 'x');
  std::vector<uint16_t> slots;
  uint16_t slot = 0;
  while (page_.InsertAt(slot, big).ok()) {
    slots.push_back(slot);
    ++slot;
  }
  ASSERT_GE(slots.size(), 4u);
  // Free half the payload space, then a big insert must succeed via
  // compaction.
  for (size_t i = 0; i < slots.size(); i += 2) {
    ASSERT_TRUE(page_.DeleteAt(slots[i]).ok());
  }
  EXPECT_TRUE(page_.InsertAt(slot, big).ok());
  // Survivors are intact after compaction.
  for (size_t i = 1; i < slots.size(); i += 2) {
    EXPECT_EQ(page_.ReadAt(slots[i])->ToString(), big);
  }
}

TEST_F(SlottedPageTest, FullPageReportsNoSpace) {
  const std::string big(2000, 'y');
  uint16_t slot = 0;
  while (page_.InsertAt(slot, big).ok()) ++slot;
  EXPECT_TRUE(page_.InsertAt(slot, big).IsNoSpace());
  // Page still coherent.
  EXPECT_EQ(page_.LiveRows(), slot);
}

TEST_F(SlottedPageTest, GrowingUpdateFailureKeepsOldPayload) {
  const std::string filler(1500, 'f');
  uint16_t slot = 0;
  while (page_.InsertAt(slot, filler).ok()) ++slot;
  // No room to grow the row by 4 KiB.
  Status s = page_.UpdateAt(0, std::string(4096, 'g'));
  EXPECT_TRUE(s.IsNoSpace());
  EXPECT_EQ(page_.ReadAt(0)->ToString(), filler);
}

TEST_F(SlottedPageTest, RandomizedMirrorsReferenceMap) {
  Random rng(77);
  std::vector<std::string> reference(64);
  std::vector<bool> occupied(64, false);
  for (int i = 0; i < 5000; ++i) {
    const uint16_t slot = static_cast<uint16_t>(rng.Uniform(64));
    const int action = static_cast<int>(rng.Uniform(3));
    if (action == 0) {
      std::string data(1 + rng.Uniform(64), static_cast<char>('a' + slot % 26));
      if (page_.InsertAt(slot, data).ok()) {
        ASSERT_FALSE(occupied[slot]);
        reference[slot] = data;
        occupied[slot] = true;
      }
    } else if (action == 1) {
      std::string data(1 + rng.Uniform(64), 'U');
      if (page_.UpdateAt(slot, data).ok()) {
        ASSERT_TRUE(occupied[slot]);
        reference[slot] = data;
      }
    } else {
      if (page_.DeleteAt(slot).ok()) {
        ASSERT_TRUE(occupied[slot]);
        occupied[slot] = false;
      }
    }
  }
  for (uint16_t s = 0; s < 64; ++s) {
    if (s >= page_.SlotCount() || !page_.IsOccupied(s)) {
      EXPECT_FALSE(occupied[s]) << "slot " << s;
    } else {
      ASSERT_TRUE(occupied[s]) << "slot " << s;
      EXPECT_EQ(page_.ReadAt(s)->ToString(), reference[s]);
    }
  }
}

// --- devices --------------------------------------------------------------------

TEST(MemDeviceTest, ReadBeforeWriteIsZeroed) {
  MemDevice dev;
  char buf[kPageSize];
  memset(buf, 0xFF, kPageSize);
  ASSERT_TRUE(dev.ReadPage(3, buf).ok());
  for (size_t i = 0; i < kPageSize; ++i) ASSERT_EQ(buf[i], 0);
}

TEST(MemDeviceTest, WriteReadRoundTrip) {
  MemDevice dev;
  char out[kPageSize], in[kPageSize];
  for (size_t i = 0; i < kPageSize; ++i) out[i] = static_cast<char>(i * 7);
  ASSERT_TRUE(dev.WritePage(5, out).ok());
  EXPECT_EQ(dev.NumPages(), 6u);
  ASSERT_TRUE(dev.ReadPage(5, in).ok());
  EXPECT_EQ(memcmp(out, in, kPageSize), 0);
  DeviceStats s = dev.GetStats();
  EXPECT_EQ(s.page_writes, 1);
  EXPECT_EQ(s.page_reads, 1);
}

TEST(FileDeviceTest, PersistsAcrossReopen) {
  const std::string path = ::testing::TempDir() + "/btrim_filedev_test.dat";
  std::filesystem::remove(path);
  char out[kPageSize];
  memset(out, 0x5A, kPageSize);
  {
    Result<std::unique_ptr<FileDevice>> dev = FileDevice::Open(path);
    ASSERT_TRUE(dev.ok());
    ASSERT_TRUE((*dev)->WritePage(2, out).ok());
    ASSERT_TRUE((*dev)->Sync().ok());
  }
  {
    Result<std::unique_ptr<FileDevice>> dev = FileDevice::Open(path);
    ASSERT_TRUE(dev.ok());
    EXPECT_EQ((*dev)->NumPages(), 3u);
    char in[kPageSize];
    ASSERT_TRUE((*dev)->ReadPage(2, in).ok());
    EXPECT_EQ(memcmp(out, in, kPageSize), 0);
    // Never-written page reads as zeros.
    ASSERT_TRUE((*dev)->ReadPage(1, in).ok());
    for (size_t i = 0; i < kPageSize; ++i) ASSERT_EQ(in[i], 0);
  }
  std::filesystem::remove(path);
}

// --- BufferCache ------------------------------------------------------------------

class BufferCacheTest : public ::testing::Test {
 protected:
  BufferCacheTest() : cache_(8) { cache_.AttachDevice(1, &dev_); }
  MemDevice dev_;
  BufferCache cache_;
};

TEST_F(BufferCacheTest, MissThenHit) {
  {
    Result<PageGuard> g = cache_.FixPage({1, 0}, LatchMode::kExclusive);
    ASSERT_TRUE(g.ok());
    g->data()[0] = 'A';
    g->MarkDirty();
  }
  {
    Result<PageGuard> g = cache_.FixPage({1, 0}, LatchMode::kShared);
    ASSERT_TRUE(g.ok());
    EXPECT_EQ(g->data()[0], 'A');
  }
  BufferCacheStats s = cache_.GetStats();
  EXPECT_EQ(s.misses, 1);
  EXPECT_EQ(s.hits, 1);
}

TEST_F(BufferCacheTest, DirtyPageSurvivesEviction) {
  {
    Result<PageGuard> g = cache_.FixPage({1, 42}, LatchMode::kExclusive);
    ASSERT_TRUE(g.ok());
    memset(g->data(), 0x42, kPageSize);
    g->MarkDirty();
  }
  // Cycle through more pages than frames to force eviction.
  for (uint32_t p = 100; p < 120; ++p) {
    Result<PageGuard> g = cache_.FixPage({1, p}, LatchMode::kShared);
    ASSERT_TRUE(g.ok());
  }
  EXPECT_GT(cache_.GetStats().evictions, 0);
  Result<PageGuard> g = cache_.FixPage({1, 42}, LatchMode::kShared);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(static_cast<unsigned char>(g->data()[0]), 0x42);
}

TEST_F(BufferCacheTest, AllFramesPinnedFails) {
  std::vector<PageGuard> guards;
  for (uint32_t p = 0; p < 8; ++p) {
    Result<PageGuard> g = cache_.FixPage({1, p}, LatchMode::kShared);
    ASSERT_TRUE(g.ok());
    guards.push_back(std::move(*g));
  }
  Result<PageGuard> g = cache_.FixPage({1, 99}, LatchMode::kShared);
  EXPECT_TRUE(g.status().IsBusy());
  guards.clear();
  g = cache_.FixPage({1, 99}, LatchMode::kShared);
  EXPECT_TRUE(g.ok());
}

TEST_F(BufferCacheTest, UnattachedFileIsInvalidArgument) {
  Result<PageGuard> g = cache_.FixPage({9, 0}, LatchMode::kShared);
  EXPECT_TRUE(g.status().IsInvalidArgument());
}

TEST_F(BufferCacheTest, SharedLatchesCoexistOnOnePage) {
  Result<PageGuard> a = cache_.FixPage({1, 0}, LatchMode::kShared);
  Result<PageGuard> b = cache_.FixPage({1, 0}, LatchMode::kShared);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
}

TEST_F(BufferCacheTest, ContentionIsCountedOnExclusiveClash) {
  Result<PageGuard> a = cache_.FixPage({1, 0}, LatchMode::kExclusive);
  ASSERT_TRUE(a.ok());
  std::thread waiter([&] {
    Result<PageGuard> b = cache_.FixPage({1, 0}, LatchMode::kShared);
    ASSERT_TRUE(b.ok());
    EXPECT_TRUE(b->contended());
  });
  // Give the waiter time to hit the latch.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  a->Release();
  waiter.join();
  EXPECT_GE(cache_.GetStats().latch_contention, 1);
}

TEST_F(BufferCacheTest, FlushAllWritesDirtyPages) {
  {
    Result<PageGuard> g = cache_.FixPage({1, 7}, LatchMode::kExclusive);
    ASSERT_TRUE(g.ok());
    g->data()[0] = 'Z';
    g->MarkDirty();
  }
  ASSERT_TRUE(cache_.FlushAll().ok());
  char buf[kPageSize];
  ASSERT_TRUE(dev_.ReadPage(7, buf).ok());
  EXPECT_EQ(buf[0], 'Z');
}

TEST_F(BufferCacheTest, DropAllColdRestart) {
  {
    Result<PageGuard> g = cache_.FixPage({1, 3}, LatchMode::kExclusive);
    ASSERT_TRUE(g.ok());
    g->data()[0] = 'Q';
    g->MarkDirty();
  }
  ASSERT_TRUE(cache_.DropAll().ok());
  BufferCacheStats before = cache_.GetStats();
  Result<PageGuard> g = cache_.FixPage({1, 3}, LatchMode::kShared);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->data()[0], 'Q');
  EXPECT_EQ(cache_.GetStats().misses, before.misses + 1);
}

TEST_F(BufferCacheTest, ConcurrentMixedTraffic) {
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::atomic<bool> failed{false};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Random rng(static_cast<uint64_t>(t) + 1);
      for (int i = 0; i < 2000; ++i) {
        const uint32_t page = static_cast<uint32_t>(rng.Uniform(16));
        if (rng.Uniform(2) == 0) {
          Result<PageGuard> g = cache_.FixPage({1, page},
                                               LatchMode::kExclusive);
          if (!g.ok()) {
            if (!g.status().IsBusy()) failed = true;
            continue;
          }
          g->data()[0] = static_cast<char>(t);
          g->MarkDirty();
        } else {
          Result<PageGuard> g = cache_.FixPage({1, page}, LatchMode::kShared);
          if (!g.ok() && !g.status().IsBusy()) failed = true;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(failed.load());
}

// --- HeapFile ----------------------------------------------------------------------

class HeapFileTest : public ::testing::Test {
 protected:
  HeapFileTest() : cache_(64), heap_(1, &cache_, /*slots_per_page=*/8) {
    cache_.AttachDevice(1, &dev_);
  }
  MemDevice dev_;
  BufferCache cache_;
  HeapFile heap_;
};

TEST_F(HeapFileTest, RidAllocationIsSequential) {
  Rid r0 = heap_.AllocateRid();
  Rid r1 = heap_.AllocateRid();
  EXPECT_EQ(r0.page_no, 0u);
  EXPECT_EQ(r0.slot, 0);
  EXPECT_EQ(r1.page_no, 0u);
  EXPECT_EQ(r1.slot, 1);
  for (int i = 2; i < 8; ++i) heap_.AllocateRid();
  Rid r8 = heap_.AllocateRid();
  EXPECT_EQ(r8.page_no, 1u);
  EXPECT_EQ(r8.slot, 0);
}

TEST_F(HeapFileTest, PlaceByRidAfterGap) {
  // Allocate 20 RIDs but place only some: the deferred-placement pattern of
  // IMRS-first inserts.
  std::vector<Rid> rids;
  for (int i = 0; i < 20; ++i) rids.push_back(heap_.AllocateRid());
  ASSERT_TRUE(heap_.Place(rids[17], "late17").ok());
  ASSERT_TRUE(heap_.Place(rids[2], "late2").ok());
  std::string out;
  ASSERT_TRUE(heap_.Read(rids[17], &out).ok());
  EXPECT_EQ(out, "late17");
  EXPECT_TRUE(heap_.Read(rids[3], &out).IsNotFound());
  EXPECT_FALSE(heap_.Exists(rids[3]));
  EXPECT_TRUE(heap_.Exists(rids[2]));
}

TEST_F(HeapFileTest, InsertReadUpdateDelete) {
  Result<Rid> rid = heap_.Insert("v1");
  ASSERT_TRUE(rid.ok());
  std::string out;
  ASSERT_TRUE(heap_.Read(*rid, &out).ok());
  EXPECT_EQ(out, "v1");
  ASSERT_TRUE(heap_.Update(*rid, "version-two").ok());
  ASSERT_TRUE(heap_.Read(*rid, &out).ok());
  EXPECT_EQ(out, "version-two");
  ASSERT_TRUE(heap_.Delete(*rid).ok());
  EXPECT_TRUE(heap_.Read(*rid, &out).IsNotFound());
}

TEST_F(HeapFileTest, ScanVisitsOnlyMaterializedRows) {
  std::vector<Rid> rids;
  for (int i = 0; i < 30; ++i) rids.push_back(heap_.AllocateRid());
  int placed = 0;
  for (size_t i = 0; i < rids.size(); i += 3) {
    ASSERT_TRUE(heap_.Place(rids[i], "row" + std::to_string(i)).ok());
    ++placed;
  }
  int seen = 0;
  ASSERT_TRUE(heap_
                  .ScanAll([&](Rid rid, Slice payload) {
                    EXPECT_TRUE(payload.starts_with("row"));
                    EXPECT_EQ(rid.file_id, 1);
                    ++seen;
                    return true;
                  })
                  .ok());
  EXPECT_EQ(seen, placed);
}

TEST_F(HeapFileTest, ScanEarlyStop) {
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(heap_.Insert("r").ok());
  }
  int seen = 0;
  ASSERT_TRUE(heap_.ScanAll([&](Rid, Slice) { return ++seen < 3; }).ok());
  EXPECT_EQ(seen, 3);
}

TEST_F(HeapFileTest, CursorRestore) {
  for (int i = 0; i < 10; ++i) heap_.AllocateRid();
  EXPECT_EQ(heap_.RowCursor(), 10u);
  heap_.SetRowCursor(100);
  Rid r = heap_.AllocateRid();
  EXPECT_EQ(static_cast<uint64_t>(r.page_no) * 8 + r.slot, 100u);
}

TEST_F(HeapFileTest, ConcurrentInsertsGetDistinctRids) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::vector<uint64_t>> rids(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        Result<Rid> rid = heap_.Insert("t" + std::to_string(t));
        ASSERT_TRUE(rid.ok());
        rids[t].push_back(rid->Encode());
      }
    });
  }
  for (auto& t : threads) t.join();
  std::vector<uint64_t> all;
  for (auto& v : rids) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  EXPECT_TRUE(std::adjacent_find(all.begin(), all.end()) == all.end());
  EXPECT_EQ(all.size(), static_cast<size_t>(kThreads * kPerThread));
}

}  // namespace
}  // namespace btrim
