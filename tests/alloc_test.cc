// Unit and property tests for the IMRS fragment memory manager.

#include <cstring>
#include <thread>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "alloc/fragment_allocator.h"
#include "common/random.h"

namespace btrim {
namespace {

constexpr size_t kMiB = 1024 * 1024;

TEST(FragmentAllocatorTest, AllocateAndFree) {
  FragmentAllocator alloc(kMiB);
  void* p = alloc.Allocate(100);
  ASSERT_NE(p, nullptr);
  EXPECT_GE(FragmentAllocator::FragmentSize(p), 100u);
  EXPECT_GT(alloc.InUseBytes(), 0);
  alloc.Free(p);
  EXPECT_EQ(alloc.InUseBytes(), 0);
}

TEST(FragmentAllocatorTest, MemoryIsWritable) {
  FragmentAllocator alloc(kMiB);
  void* p = alloc.Allocate(256);
  ASSERT_NE(p, nullptr);
  memset(p, 0xAB, 256);
  EXPECT_EQ(static_cast<unsigned char*>(p)[255], 0xAB);
  alloc.Free(p);
}

TEST(FragmentAllocatorTest, ZeroAndOversizeRequestsFail) {
  FragmentAllocator alloc(kMiB, /*segment_bytes=*/64 * 1024);
  EXPECT_EQ(alloc.Allocate(0), nullptr);
  EXPECT_EQ(alloc.Allocate(64 * 1024), nullptr);  // exceeds a segment
  EXPECT_EQ(alloc.GetStats().failed_allocs, 2);
}

TEST(FragmentAllocatorTest, CapacityIsEnforced) {
  FragmentAllocator alloc(64 * 1024);
  std::vector<void*> ptrs;
  while (true) {
    void* p = alloc.Allocate(1000);
    if (p == nullptr) break;
    ptrs.push_back(p);
  }
  EXPECT_FALSE(ptrs.empty());
  EXPECT_LE(alloc.InUseBytes(), 64 * 1024);
  // Freeing makes room again.
  alloc.Free(ptrs.back());
  ptrs.pop_back();
  void* p = alloc.Allocate(1000);
  EXPECT_NE(p, nullptr);
  alloc.Free(p);
  for (void* q : ptrs) alloc.Free(q);
  EXPECT_EQ(alloc.InUseBytes(), 0);
}

TEST(FragmentAllocatorTest, UtilizationTracksInUse) {
  FragmentAllocator alloc(100 * 1024);
  EXPECT_DOUBLE_EQ(alloc.Utilization(), 0.0);
  void* p = alloc.Allocate(50 * 1024);
  ASSERT_NE(p, nullptr);
  EXPECT_GT(alloc.Utilization(), 0.49);
  EXPECT_LT(alloc.Utilization(), 0.60);
  alloc.Free(p);
  EXPECT_DOUBLE_EQ(alloc.Utilization(), 0.0);
}

TEST(FragmentAllocatorTest, FreedBlocksAreReused) {
  FragmentAllocator alloc(kMiB);
  void* p1 = alloc.Allocate(500);
  ASSERT_NE(p1, nullptr);
  alloc.Free(p1);
  // Same shard, same size: best-fit should hand back the same block.
  void* p2 = alloc.Allocate(500);
  EXPECT_EQ(p1, p2);
  alloc.Free(p2);
}

TEST(FragmentAllocatorTest, CoalescingRebuildsLargeBlocks) {
  FragmentAllocator alloc(kMiB, /*segment_bytes=*/64 * 1024);
  // Fill a segment with small blocks, free all, then allocate one large
  // block: without coalescing this fails.
  std::vector<void*> ptrs;
  for (int i = 0; i < 100; ++i) {
    void* p = alloc.Allocate(500);
    ASSERT_NE(p, nullptr);
    ptrs.push_back(p);
  }
  for (void* p : ptrs) alloc.Free(p);
  EXPECT_GT(alloc.GetStats().coalesce_count, 0);
  void* big = alloc.Allocate(60 * 1024);
  EXPECT_NE(big, nullptr);
  alloc.Free(big);
}

TEST(FragmentAllocatorTest, StatsAreCoherent) {
  FragmentAllocator alloc(kMiB);
  void* a = alloc.Allocate(64);
  void* b = alloc.Allocate(128);
  alloc.Free(a);
  FragmentAllocatorStats s = alloc.GetStats();
  EXPECT_EQ(s.alloc_calls, 2);
  EXPECT_EQ(s.free_calls, 1);
  EXPECT_EQ(s.capacity_bytes, static_cast<int64_t>(kMiB));
  EXPECT_GT(s.segment_bytes, 0);
  alloc.Free(b);
}

TEST(FragmentAllocatorTest, DistinctAllocationsDontOverlap) {
  FragmentAllocator alloc(kMiB);
  Random rng(11);
  struct Frag {
    char* p;
    size_t n;
    unsigned char tag;
  };
  std::vector<Frag> frags;
  for (int i = 0; i < 200; ++i) {
    const size_t n = 16 + rng.Uniform(400);
    char* p = static_cast<char*>(alloc.Allocate(n));
    ASSERT_NE(p, nullptr);
    const unsigned char tag = static_cast<unsigned char>(i);
    memset(p, tag, n);
    frags.push_back({p, n, tag});
  }
  for (const Frag& f : frags) {
    for (size_t j = 0; j < f.n; ++j) {
      ASSERT_EQ(static_cast<unsigned char>(f.p[j]), f.tag);
    }
    alloc.Free(f.p);
  }
}

TEST(FragmentAllocatorTest, RandomAllocFreeChurn) {
  FragmentAllocator alloc(2 * kMiB);
  Random rng(3);
  std::vector<std::pair<void*, size_t>> live;
  int64_t expected_low_water = 0;
  for (int i = 0; i < 20000; ++i) {
    if (live.empty() || rng.Uniform(100) < 60) {
      const size_t n = 16 + rng.Uniform(2000);
      void* p = alloc.Allocate(n);
      if (p != nullptr) {
        live.emplace_back(p, n);
      }
    } else {
      const size_t pick = rng.Uniform(live.size());
      alloc.Free(live[pick].first);
      live[pick] = live.back();
      live.pop_back();
    }
  }
  ASSERT_TRUE(alloc.CheckConsistency().ok());
  for (auto& [p, n] : live) alloc.Free(p);
  EXPECT_EQ(alloc.InUseBytes(), expected_low_water);
  EXPECT_TRUE(alloc.CheckConsistency().ok());
}

TEST(FragmentAllocatorTest, ConcurrentChurnIsSafe) {
  FragmentAllocator alloc(8 * kMiB);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&alloc, t] {
      Random rng(100 + static_cast<uint64_t>(t));
      std::vector<void*> mine;
      for (int i = 0; i < 5000; ++i) {
        if (mine.empty() || rng.Uniform(100) < 55) {
          void* p = alloc.Allocate(16 + rng.Uniform(512));
          if (p != nullptr) {
            memset(p, t + 1, 16);
            mine.push_back(p);
          }
        } else {
          const size_t pick = rng.Uniform(mine.size());
          alloc.Free(mine[pick]);
          mine[pick] = mine.back();
          mine.pop_back();
        }
      }
      for (void* p : mine) alloc.Free(p);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(alloc.InUseBytes(), 0);
  EXPECT_TRUE(alloc.CheckConsistency().ok());
}

TEST(FragmentAllocatorConsistency, FreshAllocatorIsConsistent) {
  FragmentAllocator alloc(kMiB);
  EXPECT_TRUE(alloc.CheckConsistency().ok());
  void* p = alloc.Allocate(100);
  EXPECT_TRUE(alloc.CheckConsistency().ok());
  alloc.Free(p);
  EXPECT_TRUE(alloc.CheckConsistency().ok());
}

TEST(FragmentAllocatorConsistency, DetectsCorruptedHeader) {
  FragmentAllocator alloc(kMiB);
  void* p = alloc.Allocate(100);
  ASSERT_NE(p, nullptr);
  // Smash the block header's magic: the checker must notice.
  memset(static_cast<char*>(p) - 16, 0x5A, 4);
  EXPECT_FALSE(alloc.CheckConsistency().ok());
}

// Parameterized sweep: every size class round-trips and accounting returns
// to zero.
class FragmentSizeSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(FragmentSizeSweep, RoundTrip) {
  FragmentAllocator alloc(4 * kMiB);
  const size_t n = GetParam();
  std::vector<void*> ptrs;
  for (int i = 0; i < 50; ++i) {
    void* p = alloc.Allocate(n);
    ASSERT_NE(p, nullptr) << "size " << n;
    EXPECT_GE(FragmentAllocator::FragmentSize(p), n);
    ptrs.push_back(p);
  }
  for (void* p : ptrs) alloc.Free(p);
  EXPECT_EQ(alloc.InUseBytes(), 0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FragmentSizeSweep,
                         ::testing::Values(1, 15, 16, 17, 32, 63, 64, 65, 100,
                                           255, 256, 1000, 1024, 4000, 8192,
                                           16384, 65536));

}  // namespace
}  // namespace btrim
