// Concurrency tests for the overlapped (non-quiescent) checkpoint: writers
// keep committing while the checkpointer walks its snapshot, pack and GC
// keep evicting rows through the copy-on-write stash, and back-to-back
// checkpoints reuse the machinery without leaking arming state. Sized for
// TSan (ctest -L stress runs this suite under the tsan preset); the lock
// hierarchy is asserted in-suite via the lock-order validator.
//
// The correctness claims exercised here:
//   - commits are never lost or torn by a concurrent checkpoint: after the
//     writers join, every acknowledged value reads back exactly, both live
//     and after a crash + recovery over the checkpointed logs;
//   - checkpoint vs. pack/GC arbitration: whole-row evictions during the
//     snapshot walk stash their pre-image, so recovery from a checkpoint
//     taken mid-eviction still surfaces every snapshot-era row;
//   - the foreground pause is bounded to the begin barrier: the checkpoint
//     metrics expose it, and it must be a small fraction of the total
//     checkpoint duration even under write load.

#include <atomic>
#include <filesystem>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/lock_order.h"
#include "engine/database.h"

namespace btrim {
namespace {

class CheckpointConcurrentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/btrim_ckpt_concurrent_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
#if defined(BTRIM_LOCK_ORDER_CHECKS)
    LockOrderValidator::Global()->ResetForTest();
#endif
  }
  void TearDown() override {
#if defined(BTRIM_LOCK_ORDER_CHECKS)
    // Every acquisition in the test fed the global validator; the overlap
    // of checkpoint, writers, pack, and GC must not create rank cycles.
    auto* validator = LockOrderValidator::Global();
    EXPECT_EQ(validator->ViolationCount(), 0) << validator->Report();
#endif
    db_.reset();
    if (!::testing::Test::HasFailure()) {
      std::filesystem::remove_all(dir_);
    }
  }

  DatabaseOptions Options(bool tiny_imrs) {
    DatabaseOptions options;
    options.in_memory = false;
    options.data_dir = dir_;
    options.buffer_cache_frames = 128;
    options.lock_timeout_ms = 2000;
    if (tiny_imrs) {
      // Starves the IMRS so pack and GC evict aggressively while the
      // checkpointer walks — the CoW stash path gets real traffic.
      options.imrs_cache_bytes = 96 << 10;
      options.ilm.steady_cache_pct = 0.01;
      options.ilm.aggressive_fraction = 0.05;
      options.ilm.pack_batch_rows = 16;
    } else {
      options.imrs_cache_bytes = 8 << 20;
    }
    return options;
  }

  void Open(const DatabaseOptions& options, bool recover) {
    db_.reset();
    Result<std::unique_ptr<Database>> opened = Database::Open(options);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    db_ = std::move(*opened);
    TableOptions topt;
    topt.name = "kv";
    topt.schema = Schema({
        Column::Int64("id"),
        Column::Int64("group_id"),
        Column::String("value", 64),
    });
    topt.primary_key = {0};
    Result<Table*> created = db_->CreateTable(topt);
    ASSERT_TRUE(created.ok());
    table_ = *created;
    if (recover) {
      ASSERT_TRUE(db_->Recover().ok());
    }
  }

  std::string Key(int64_t id) { return table_->pk_encoder().KeyForInts({id}); }

  Status WriteRow(int64_t id, const std::string& value) {
    auto txn = db_->Begin();
    std::string row;
    Status probe = db_->SelectByKey(txn.get(), table_, Key(id), &row);
    Status s;
    if (probe.IsNotFound()) {
      RecordBuilder b(&table_->schema());
      b.AddInt64(id).AddInt64(id % 5).AddString(value);
      s = db_->Insert(txn.get(), table_, b.Finish());
    } else if (probe.ok()) {
      s = db_->Update(txn.get(), table_, Key(id), [&](std::string* payload) {
        RecordEditor e(&table_->schema(), Slice(*payload));
        e.SetString(2, value);
        *payload = e.Encode();
      });
    } else {
      s = probe;
    }
    if (!s.ok()) {
      Status a = db_->Abort(txn.get());
      (void)a;
      return s;
    }
    return db_->Commit(txn.get());
  }

  Result<std::string> ReadValue(int64_t id) {
    auto txn = db_->Begin();
    std::string row;
    Status s = db_->SelectByKey(txn.get(), table_, Key(id), &row);
    Status c = db_->Commit(txn.get());
    (void)c;
    if (!s.ok()) return s;
    RecordView v(&table_->schema(), Slice(row));
    return v.GetString(2).ToString();
  }

  /// Runs `writers` threads (disjoint key ranges, each key rewritten in
  /// rounds) concurrently with `body` on the calling thread. Returns the
  /// final committed value per key.
  std::map<int64_t, std::string> RunWritersAround(
      int writers, int keys_per_writer, int rounds,
      const std::function<void()>& body) {
    std::atomic<bool> failed{false};
    std::vector<std::thread> threads;
    threads.reserve(writers);
    for (int w = 0; w < writers; ++w) {
      threads.emplace_back([&, w] {
        for (int r = 0; r < rounds && !failed.load(); ++r) {
          for (int k = 0; k < keys_per_writer; ++k) {
            const int64_t id = w * 100000 + k;
            Status s =
                WriteRow(id, "w" + std::to_string(w) + "r" + std::to_string(r));
            if (!s.ok() && !s.IsBusy()) {
              ADD_FAILURE() << "writer " << w << " round " << r << " key "
                            << id << ": " << s.ToString();
              failed.store(true);
              return;
            }
          }
        }
      });
    }
    body();
    for (auto& t : threads) t.join();

    std::map<int64_t, std::string> expect;
    const std::string last = "r" + std::to_string(rounds - 1);
    for (int w = 0; w < writers; ++w) {
      for (int k = 0; k < keys_per_writer; ++k) {
        expect[w * 100000 + k] = "w" + std::to_string(w) + last;
      }
    }
    return expect;
  }

  void VerifyAll(const std::map<int64_t, std::string>& expect) {
    for (const auto& [id, value] : expect) {
      Result<std::string> v = ReadValue(id);
      ASSERT_TRUE(v.ok()) << "key " << id << ": " << v.status().ToString();
      EXPECT_EQ(*v, value) << "key " << id;
    }
  }

  std::string dir_;
  std::unique_ptr<Database> db_;
  Table* table_ = nullptr;
};

// Writers vs. checkpointer: commits flow while checkpoints run; every
// acknowledged value must read back, live and across a crash.
TEST_F(CheckpointConcurrentTest, WritersCommitThroughCheckpoints) {
  const DatabaseOptions options = Options(/*tiny_imrs=*/false);
  Open(options, false);

  int completed = 0;
  auto expect = RunWritersAround(4, 40, 6, [&] {
    for (int c = 0; c < 5; ++c) {
      Status s = db_->Checkpoint();
      EXPECT_TRUE(s.ok() || s.IsBusy()) << s.ToString();
      if (s.ok()) ++completed;
    }
  });
  EXPECT_GT(completed, 0) << "no checkpoint overlapped the write load";
  VerifyAll(expect);
  EXPECT_TRUE(db_->ValidateInvariants().ok());

  // The checkpoint is non-quiescent, not non-durable: a crash recovered
  // over the checkpointed logs must surface the same final state.
  Open(options, true);
  VerifyAll(expect);
  EXPECT_TRUE(db_->ValidateInvariants().ok());
}

// Checkpoint vs. pack/GC: a starved IMRS forces whole-row evictions during
// the snapshot walk, driving StashCheckpointPreImage. The stash counter
// proves the path ran; recovery proves the stashed pre-images land.
TEST_F(CheckpointConcurrentTest, CheckpointSurvivesConcurrentPackAndGc) {
  const DatabaseOptions options = Options(/*tiny_imrs=*/true);
  Open(options, false);

  std::atomic<bool> stop{false};
  std::thread background([&] {
    while (!stop.load(std::memory_order_acquire)) {
      db_->RunGcOnce();
      db_->RunIlmTickOnce();
    }
  });

  int completed = 0;
  auto expect = RunWritersAround(3, 60, 5, [&] {
    for (int c = 0; c < 6; ++c) {
      Status s = db_->Checkpoint();
      EXPECT_TRUE(s.ok() || s.IsBusy()) << s.ToString();
      if (s.ok()) ++completed;
    }
  });
  stop.store(true, std::memory_order_release);
  background.join();

  EXPECT_GT(completed, 0);
  VerifyAll(expect);
  EXPECT_TRUE(db_->ValidateInvariants().ok());

  Open(options, true);
  VerifyAll(expect);
  EXPECT_TRUE(db_->ValidateInvariants().ok());
}

// Back-to-back checkpoints: the arming/drain cycle must leave no residue —
// each checkpoint sees a fresh stash and a fresh pin slot, and the recovery
// rebase picks the newest complete pair.
TEST_F(CheckpointConcurrentTest, BackToBackCheckpointsStayClean) {
  const DatabaseOptions options = Options(/*tiny_imrs=*/false);
  Open(options, false);

  std::map<int64_t, std::string> expect;
  for (int round = 0; round < 6; ++round) {
    for (int64_t id = 0; id < 30; ++id) {
      const std::string value = "round" + std::to_string(round);
      ASSERT_TRUE(WriteRow(id, value).ok());
      expect[id] = value;
    }
    ASSERT_TRUE(db_->Checkpoint().ok()) << "round " << round;
  }
  const DatabaseStats stats = db_->GetStats();
  (void)stats;
  VerifyAll(expect);

  Open(options, true);
  VerifyAll(expect);
  EXPECT_TRUE(db_->ValidateInvariants().ok());
}

// The begin barrier is the only foreground stall: under write load the
// recorded pause must be a small fraction of the whole checkpoint (the
// quiescent design it replaced stalled commits for the full duration).
TEST_F(CheckpointConcurrentTest, PauseIsFractionOfCheckpointDuration) {
  const DatabaseOptions options = Options(/*tiny_imrs=*/false);
  Open(options, false);

  // Enough rows that the snapshot walk takes measurably longer than the
  // barrier.
  for (int64_t id = 0; id < 3000; ++id) {
    ASSERT_TRUE(WriteRow(id, "bulk-" + std::to_string(id)).ok());
  }

  auto expect = RunWritersAround(2, 30, 4, [&] {
    Status s = db_->Checkpoint();
    EXPECT_TRUE(s.ok()) << s.ToString();
  });

  const obs::MetricLabels labels{"checkpoint", "", "", ""};
  obs::MetricSample pause_sample, total_sample;
  ASSERT_TRUE(db_->metrics_registry()->Lookup("checkpoint.last_pause_us",
                                              labels, &pause_sample));
  ASSERT_TRUE(db_->metrics_registry()->Lookup("checkpoint.last_total_us",
                                              labels, &total_sample));
  const int64_t pause_us = pause_sample.value;
  const int64_t total_us = total_sample.value;
  EXPECT_GT(total_us, 0);
  // Generous in-suite bound (the CI perf gate pins the real ratio): the
  // pause may not dominate the checkpoint.
  EXPECT_LT(pause_us, total_us / 2 + 1000)
      << "begin-barrier pause " << pause_us << "us vs total " << total_us
      << "us";
  VerifyAll(expect);
}

}  // namespace
}  // namespace btrim
