// Unit tests for the deterministic fault-injection layer: FaultPlan
// scripting, the FaultyDevice / FaultyLogStorage decorators, error
// propagation through the buffer cache and Log, and the stats contracts
// under injected failures (only operations that succeed end-to-end count).

#include <cstring>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "common/fault_plan.h"
#include "page/buffer_cache.h"
#include "page/device.h"
#include "page/faulty_device.h"
#include "wal/faulty_log_storage.h"
#include "wal/log.h"
#include "wal/log_record.h"

namespace btrim {
namespace {

// --- FaultPlan --------------------------------------------------------------

TEST(FaultPlanTest, OpIndexingIsGlobalAcrossTargets) {
  FaultPlan plan(1);
  EXPECT_EQ(plan.OnOp("a", FaultOp::kWrite), FaultOutcome::kNone);
  EXPECT_EQ(plan.OnOp("b", FaultOp::kSync), FaultOutcome::kNone);
  EXPECT_EQ(plan.OnOp("a", FaultOp::kRead), FaultOutcome::kNone);
  EXPECT_EQ(plan.ops_seen(), 3u);
}

TEST(FaultPlanTest, FailAtOpFiresExactlyOnce) {
  FaultPlan plan(1);
  plan.FailAtOp(1);
  EXPECT_EQ(plan.OnOp("x", FaultOp::kWrite), FaultOutcome::kNone);
  EXPECT_EQ(plan.OnOp("x", FaultOp::kWrite), FaultOutcome::kError);
  EXPECT_EQ(plan.OnOp("x", FaultOp::kWrite), FaultOutcome::kNone);
  EXPECT_EQ(plan.GetStats().errors_injected, 1);
}

TEST(FaultPlanTest, CrashIsSticky) {
  FaultPlan plan(1);
  plan.CrashAtOp(0);
  EXPECT_EQ(plan.OnOp("x", FaultOp::kSync), FaultOutcome::kCrash);
  EXPECT_TRUE(plan.crashed());
  FaultPlanStats stats = plan.GetStats();
  EXPECT_TRUE(stats.crashed);
  EXPECT_EQ(stats.crash_op, 0u);
}

TEST(FaultPlanTest, FailNthFiltersByOpKindAndTarget) {
  FaultPlan plan(1);
  plan.FailNth(FaultOp::kWrite, "heap", 2);
  // Non-matching kind and target never advance the trigger.
  EXPECT_EQ(plan.OnOp("kv.heap0.3", FaultOp::kRead), FaultOutcome::kNone);
  EXPECT_EQ(plan.OnOp("kv.pk.1", FaultOp::kWrite), FaultOutcome::kNone);
  EXPECT_EQ(plan.OnOp("kv.heap0.3", FaultOp::kWrite), FaultOutcome::kNone);
  EXPECT_EQ(plan.OnOp("kv.heap0.3", FaultOp::kWrite), FaultOutcome::kError);
  EXPECT_EQ(plan.OnOp("kv.heap0.3", FaultOp::kWrite), FaultOutcome::kNone);
}

TEST(FaultPlanTest, SameSeedSameOutcomes) {
  auto run = [](uint64_t seed) {
    FaultPlan plan(seed);
    plan.SetErrorProbability(FaultOp::kWrite, 0.3);
    std::string outcomes;
    for (int i = 0; i < 64; ++i) {
      outcomes.push_back(
          plan.OnOp("t", FaultOp::kWrite) == FaultOutcome::kNone ? '.' : 'E');
    }
    return outcomes;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));  // and the seed actually matters
}

TEST(FaultPlanTest, TraceRecordsOpsAndTargets) {
  FaultPlan plan(1);
  plan.EnableTrace(true);
  plan.OnOp("syslogs", FaultOp::kAppend);
  plan.OnOp("kv.heap0.3", FaultOp::kSync);
  std::vector<TraceEntry> trace = plan.Trace();
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0].op, FaultOp::kAppend);
  EXPECT_EQ(trace[0].target, "syslogs");
  EXPECT_EQ(trace[1].op, FaultOp::kSync);
  EXPECT_EQ(trace[1].target, "kv.heap0.3");
}

// --- FaultyDevice -----------------------------------------------------------

std::unique_ptr<FaultyDevice> MakeDevice(std::shared_ptr<FaultPlan> plan,
                                         MemDevice** inner_out) {
  auto inner = std::make_unique<MemDevice>();
  *inner_out = inner.get();
  return std::make_unique<FaultyDevice>(std::move(inner), std::move(plan),
                                        "dev");
}

TEST(FaultyDeviceTest, WritesPendUntilSyncAndReadsSeeThem) {
  auto plan = std::make_shared<FaultPlan>(1);
  MemDevice* inner = nullptr;
  auto dev = MakeDevice(plan, &inner);

  std::string page(kPageSize, 'A');
  ASSERT_TRUE(dev->WritePage(0, page.data()).ok());
  EXPECT_EQ(dev->PendingPages(), 1u);
  EXPECT_EQ(inner->GetStats().page_writes, 0);  // nothing durable yet
  EXPECT_EQ(dev->NumPages(), 1u);               // but addressable in-process

  std::string buf(kPageSize, '\0');
  ASSERT_TRUE(dev->ReadPage(0, buf.data()).ok());
  EXPECT_EQ(buf, page);  // read-your-writes through the OS-cache model

  ASSERT_TRUE(dev->Sync().ok());
  EXPECT_EQ(dev->PendingPages(), 0u);
  EXPECT_GT(inner->GetStats().page_writes, 0);
  ASSERT_TRUE(inner->ReadPage(0, buf.data()).ok());
  EXPECT_EQ(buf, page);
}

TEST(FaultyDeviceTest, CrashDiscardsUnsyncedWrites) {
  auto plan = std::make_shared<FaultPlan>(1);
  MemDevice* inner = nullptr;
  auto dev = MakeDevice(plan, &inner);

  std::string page(kPageSize, 'A');
  ASSERT_TRUE(dev->WritePage(0, page.data()).ok());  // op 0
  plan->CrashAtOp(1);
  EXPECT_FALSE(dev->Sync().ok());  // op 1: crash mid-sync
  EXPECT_TRUE(plan->crashed());
  // The write never reached the inner device, and the decorator is dead.
  EXPECT_EQ(inner->GetStats().page_writes, 0);
  EXPECT_FALSE(dev->WritePage(0, page.data()).ok());
  EXPECT_FALSE(dev->ReadPage(0, page.data()).ok());
}

TEST(FaultyDeviceTest, InjectedWriteErrorHasNoSideEffects) {
  auto plan = std::make_shared<FaultPlan>(1);
  MemDevice* inner = nullptr;
  auto dev = MakeDevice(plan, &inner);

  plan->FailAtOp(0);
  std::string page(kPageSize, 'A');
  EXPECT_FALSE(dev->WritePage(0, page.data()).ok());
  EXPECT_EQ(dev->PendingPages(), 0u);
  // Failed operations never count toward traffic stats.
  EXPECT_EQ(dev->GetStats().page_writes, 0);

  ASSERT_TRUE(dev->WritePage(0, page.data()).ok());  // next attempt succeeds
  EXPECT_EQ(dev->GetStats().page_writes, 1);
}

TEST(FaultyDeviceTest, TornWriteAppliesPartialSectorImage) {
  auto plan = std::make_shared<FaultPlan>(1);
  MemDevice* inner = nullptr;
  auto dev = MakeDevice(plan, &inner);

  plan->TornWriteAtOp(0);
  std::string page(kPageSize, 'A');
  EXPECT_FALSE(dev->WritePage(0, page.data()).ok());
  EXPECT_EQ(plan->GetStats().torn_writes, 1);

  // The pending image holds a sector-granular mix of the new bytes ('A')
  // and the base image (zeroes) — never all of one or the other.
  std::string buf(kPageSize, '\xee');
  ASSERT_TRUE(dev->ReadPage(0, buf.data()).ok());
  size_t new_bytes = 0, old_bytes = 0;
  for (char c : buf) {
    if (c == 'A') ++new_bytes;
    else if (c == '\0') ++old_bytes;
    else FAIL() << "unexpected byte in torn image";
  }
  EXPECT_GT(new_bytes, 0u);
  EXPECT_GT(old_bytes, 0u);
  EXPECT_EQ(new_bytes % 512, 0u);  // sector granularity
}

TEST(FaultyDeviceTest, FailedSyncKeepsWritesPendingAndUncounted) {
  auto plan = std::make_shared<FaultPlan>(1);
  MemDevice* inner = nullptr;
  auto dev = MakeDevice(plan, &inner);

  std::string page(kPageSize, 'A');
  ASSERT_TRUE(dev->WritePage(0, page.data()).ok());  // op 0
  plan->FailAtOp(1);
  EXPECT_FALSE(dev->Sync().ok());  // op 1
  EXPECT_EQ(dev->GetStats().syncs, 0);
  EXPECT_EQ(dev->PendingPages(), 1u);  // still pending, not lost

  ASSERT_TRUE(dev->Sync().ok());  // retry succeeds
  EXPECT_EQ(dev->GetStats().syncs, 1);
  EXPECT_EQ(dev->PendingPages(), 0u);
  std::string buf(kPageSize, '\0');
  ASSERT_TRUE(inner->ReadPage(0, buf.data()).ok());
  EXPECT_EQ(buf, page);
}

// --- FaultyLogStorage -------------------------------------------------------

TEST(FaultyLogStorageTest, AppendsPendUntilSync) {
  auto plan = std::make_shared<FaultPlan>(1);
  auto inner = std::make_unique<MemLogStorage>();
  MemLogStorage* raw = inner.get();
  FaultyLogStorage storage(std::move(inner), plan, "log");

  ASSERT_TRUE(storage.Append("hello ").ok());
  ASSERT_TRUE(storage.Append("world").ok());
  EXPECT_EQ(storage.PendingBytes(), 11);
  EXPECT_EQ(raw->Size(), 0);
  EXPECT_EQ(storage.Size(), 11);  // in-process view includes the tail
  std::string content;
  ASSERT_TRUE(storage.ReadAll(&content).ok());
  EXPECT_EQ(content, "hello world");

  ASSERT_TRUE(storage.Sync().ok());
  EXPECT_EQ(storage.PendingBytes(), 0);
  EXPECT_EQ(raw->Size(), 11);
}

TEST(FaultyLogStorageTest, CrashLeavesSeededTornPrefixOfTail) {
  auto plan = std::make_shared<FaultPlan>(3);
  auto inner = std::make_unique<MemLogStorage>();
  MemLogStorage* raw = inner.get();
  FaultyLogStorage storage(std::move(inner), plan, "log");

  const std::string tail = "0123456789abcdef";
  ASSERT_TRUE(storage.Append(tail).ok());  // op 0
  plan->CrashAtOp(1);
  EXPECT_FALSE(storage.Sync().ok());  // op 1: crash mid-fsync

  // What reached the inner storage is some prefix of the un-synced tail —
  // the sectors of the in-flight write that hit the platter.
  std::string durable;
  ASSERT_TRUE(raw->ReadAll(&durable).ok());
  EXPECT_LE(durable.size(), tail.size());
  EXPECT_EQ(durable, tail.substr(0, durable.size()));
  EXPECT_FALSE(storage.Append("more").ok());  // decorator is dead
}

TEST(LogPoisoningTest, FailedAppendPoisonsTheLog) {
  auto plan = std::make_shared<FaultPlan>(1);
  auto faulty = std::make_unique<FaultyLogStorage>(
      std::make_unique<MemLogStorage>(), plan, "log");
  Log log(std::move(faulty), /*sync_on_commit=*/true);

  plan->FailNth(FaultOp::kAppend, "", 1);
  LogRecord rec;
  rec.type = LogRecordType::kPsCommit;
  rec.txn_id = 1;
  EXPECT_FALSE(log.AppendRecord(rec).ok());
  EXPECT_TRUE(log.poisoned());
  EXPECT_EQ(log.GetStats().append_failures, 1);
  EXPECT_EQ(log.GetStats().records_appended, 0);

  // Every later operation fails with the sticky poison status without
  // reaching the storage: garbage may sit in the tail, and appending after
  // it would make the records unreachable by replay.
  const uint64_t ops_before = plan->ops_seen();
  EXPECT_FALSE(log.AppendRecord(rec).ok());
  EXPECT_FALSE(log.Commit().ok());
  EXPECT_FALSE(log.Truncate().ok());
  EXPECT_EQ(plan->ops_seen(), ops_before);
  EXPECT_EQ(log.GetStats().append_failures, 1);  // counted once, at the cause
}

TEST(LogPoisoningTest, FailedSyncPoisonsAndNeverElidesLater) {
  auto plan = std::make_shared<FaultPlan>(1);
  auto faulty = std::make_unique<FaultyLogStorage>(
      std::make_unique<MemLogStorage>(), plan, "log");
  Log log(std::move(faulty), /*sync_on_commit=*/true);

  LogRecord rec;
  rec.type = LogRecordType::kPsCommit;
  rec.txn_id = 1;
  ASSERT_TRUE(log.AppendRecord(rec).ok());
  plan->FailNth(FaultOp::kSync, "", 1);
  EXPECT_FALSE(log.Commit().ok());
  LogStats stats = log.GetStats();
  EXPECT_EQ(stats.sync_failures, 1);
  EXPECT_EQ(stats.syncs, 0);

  // fsyncgate: a retried Commit must NOT succeed (or be elided as clean) —
  // the storage tail's durability is indeterminate after a failed fsync.
  EXPECT_FALSE(log.Commit().ok());
  stats = log.GetStats();
  EXPECT_EQ(stats.syncs, 0);
  EXPECT_EQ(stats.syncs_elided, 0);
}

// --- BufferCache propagation ------------------------------------------------

TEST(BufferCacheFaultTest, FlushAllPropagatesWriteError) {
  auto plan = std::make_shared<FaultPlan>(1);
  MemDevice* inner = nullptr;
  auto dev = MakeDevice(plan, &inner);
  BufferCache cache(4);
  cache.AttachDevice(0, dev.get());

  {
    Result<PageGuard> guard =
        cache.FixPage(PageId{0, 0}, LatchMode::kExclusive);
    ASSERT_TRUE(guard.ok());
    memset(guard->data(), 'A', kPageSize);
    guard->MarkDirty();
  }
  plan->FailNth(FaultOp::kWrite, "", 1);
  EXPECT_FALSE(cache.FlushAll().ok());
  EXPECT_EQ(cache.GetStats().write_failures, 1);

  // The frame stayed dirty, so a retry makes the page durable: EIO is an
  // error, never data loss.
  ASSERT_TRUE(cache.FlushAll().ok());
  ASSERT_TRUE(dev->Sync().ok());
  std::string buf(kPageSize, '\0');
  ASSERT_TRUE(inner->ReadPage(0, buf.data()).ok());
  EXPECT_EQ(buf, std::string(kPageSize, 'A'));
}

TEST(BufferCacheFaultTest, EvictionWriteBackFailureSurfacesAndPreservesData) {
  auto plan = std::make_shared<FaultPlan>(1);
  MemDevice* inner = nullptr;
  auto dev = MakeDevice(plan, &inner);
  BufferCache cache(1);  // one frame: any second page forces eviction
  cache.AttachDevice(0, dev.get());

  {
    Result<PageGuard> guard =
        cache.FixPage(PageId{0, 0}, LatchMode::kExclusive);
    ASSERT_TRUE(guard.ok());
    memset(guard->data(), 'A', kPageSize);
    guard->MarkDirty();
  }
  plan->FailNth(FaultOp::kWrite, "", 1);
  // Fixing another page needs the only frame; the dirty victim's write-back
  // fails and the fix reports it instead of dropping the data.
  EXPECT_FALSE(cache.FixPage(PageId{0, 1}, LatchMode::kShared).ok());
  EXPECT_EQ(cache.GetStats().write_failures, 1);

  // Once the device recovers, the same fix succeeds and the victim's bytes
  // survive the round trip.
  ASSERT_TRUE(cache.FixPage(PageId{0, 1}, LatchMode::kShared).ok());
  {
    Result<PageGuard> guard = cache.FixPage(PageId{0, 0}, LatchMode::kShared);
    ASSERT_TRUE(guard.ok());
    EXPECT_EQ(guard->data()[0], 'A');
    EXPECT_EQ(guard->data()[kPageSize - 1], 'A');
  }
}

}  // namespace
}  // namespace btrim
