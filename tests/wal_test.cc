// Unit tests for the dual-log WAL layer: record codec, log storage
// backends, group appends, and replay semantics.

#include <filesystem>

#include <gtest/gtest.h>

#include "page/page.h"
#include "wal/log.h"
#include "wal/log_record.h"

namespace btrim {
namespace {

LogRecord SampleRecord(LogRecordType type, uint64_t txn = 7) {
  LogRecord rec;
  rec.type = type;
  rec.txn_id = txn;
  rec.table_id = 3;
  rec.partition_id = 1;
  rec.rid = Rid{2, 10, 5}.Encode();
  rec.cts = 99;
  rec.source = 2;
  rec.before = "before-image";
  rec.after = "after-image";
  return rec;
}

void ExpectEqualRecords(const LogRecord& a, const LogRecord& b) {
  EXPECT_EQ(a.type, b.type);
  EXPECT_EQ(a.txn_id, b.txn_id);
  EXPECT_EQ(a.table_id, b.table_id);
  EXPECT_EQ(a.partition_id, b.partition_id);
  EXPECT_EQ(a.rid, b.rid);
  EXPECT_EQ(a.cts, b.cts);
  EXPECT_EQ(a.source, b.source);
  EXPECT_EQ(a.before, b.before);
  EXPECT_EQ(a.after, b.after);
}

// --- codec ----------------------------------------------------------------------

class LogRecordRoundTrip
    : public ::testing::TestWithParam<LogRecordType> {};

TEST_P(LogRecordRoundTrip, SerializeParse) {
  LogRecord rec = SampleRecord(GetParam());
  std::string buf;
  AppendLogRecord(&buf, rec);
  Slice input(buf);
  LogRecord parsed;
  ASSERT_TRUE(ParseLogRecord(&input, &parsed).ok());
  ExpectEqualRecords(parsed, rec);
  EXPECT_TRUE(input.empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllTypes, LogRecordRoundTrip,
    ::testing::Values(LogRecordType::kPsInsert, LogRecordType::kPsUpdate,
                      LogRecordType::kPsDelete, LogRecordType::kPsCommit,
                      LogRecordType::kPsAbort, LogRecordType::kCheckpoint,
                      LogRecordType::kImrsInsert, LogRecordType::kImrsUpdate,
                      LogRecordType::kImrsDelete, LogRecordType::kImrsPack,
                      LogRecordType::kImrsCommit));

TEST(LogRecordTest, EmptyImagesRoundTrip) {
  LogRecord rec;
  rec.type = LogRecordType::kPsCommit;
  rec.txn_id = 1;
  std::string buf;
  AppendLogRecord(&buf, rec);
  Slice input(buf);
  LogRecord parsed;
  ASSERT_TRUE(ParseLogRecord(&input, &parsed).ok());
  EXPECT_TRUE(parsed.before.empty());
  EXPECT_TRUE(parsed.after.empty());
}

TEST(LogRecordTest, SequentialRecordsParseInOrder) {
  std::string buf;
  for (uint64_t i = 0; i < 10; ++i) {
    AppendLogRecord(&buf, SampleRecord(LogRecordType::kPsInsert, i));
  }
  Slice input(buf);
  for (uint64_t i = 0; i < 10; ++i) {
    LogRecord rec;
    ASSERT_TRUE(ParseLogRecord(&input, &rec).ok());
    EXPECT_EQ(rec.txn_id, i);
  }
  LogRecord rec;
  EXPECT_TRUE(ParseLogRecord(&input, &rec).IsNotFound());
}

TEST(LogRecordTest, TornTailDetected) {
  std::string buf;
  AppendLogRecord(&buf, SampleRecord(LogRecordType::kPsUpdate));
  // Chop off the last bytes to simulate a torn write.
  buf.resize(buf.size() - 5);
  Slice input(buf);
  LogRecord rec;
  EXPECT_TRUE(ParseLogRecord(&input, &rec).IsNotFound());
}

TEST(LogRecordTest, CorruptBodyDetectedByChecksum) {
  std::string buf;
  AppendLogRecord(&buf, SampleRecord(LogRecordType::kPsUpdate));
  buf[buf.size() / 2] ^= 0x40;  // flip a bit in the body
  Slice input(buf);
  LogRecord rec;
  EXPECT_TRUE(ParseLogRecord(&input, &rec).IsNotFound());
}

// --- storage backends ---------------------------------------------------------------

TEST(MemLogStorageTest, AppendReadTruncate) {
  MemLogStorage storage;
  ASSERT_TRUE(storage.Append("hello ").ok());
  ASSERT_TRUE(storage.Append("world").ok());
  EXPECT_EQ(storage.Size(), 11);
  std::string content;
  ASSERT_TRUE(storage.ReadAll(&content).ok());
  EXPECT_EQ(content, "hello world");
  ASSERT_TRUE(storage.Truncate().ok());
  EXPECT_EQ(storage.Size(), 0);
}

TEST(FileLogStorageTest, PersistsAcrossReopen) {
  const std::string path = ::testing::TempDir() + "/btrim_wal_test.log";
  std::filesystem::remove(path);
  {
    Result<std::unique_ptr<FileLogStorage>> storage =
        FileLogStorage::Open(path);
    ASSERT_TRUE(storage.ok());
    ASSERT_TRUE((*storage)->Append("abc").ok());
    ASSERT_TRUE((*storage)->Sync().ok());
  }
  {
    Result<std::unique_ptr<FileLogStorage>> storage =
        FileLogStorage::Open(path);
    ASSERT_TRUE(storage.ok());
    EXPECT_EQ((*storage)->Size(), 3);
    std::string content;
    ASSERT_TRUE((*storage)->ReadAll(&content).ok());
    EXPECT_EQ(content, "abc");
    ASSERT_TRUE((*storage)->Truncate().ok());
    EXPECT_EQ((*storage)->Size(), 0);
  }
  std::filesystem::remove(path);
}

// --- Log -------------------------------------------------------------------------------

TEST(LogTest, AppendAndReplay) {
  Log log(std::make_unique<MemLogStorage>(), false);
  for (uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(log.AppendRecord(SampleRecord(LogRecordType::kPsInsert, i)).ok());
  }
  std::vector<uint64_t> seen;
  ASSERT_TRUE(log.Replay([&](const LogRecord& rec) {
                   seen.push_back(rec.txn_id);
                   return true;
                 })
                  .ok());
  EXPECT_EQ(seen, (std::vector<uint64_t>{0, 1, 2, 3, 4}));
  LogStats stats = log.GetStats();
  EXPECT_EQ(stats.records_appended, 5);
  EXPECT_GT(stats.bytes_appended, 0);
}

TEST(LogTest, ReplayStopsWhenCallbackReturnsFalse) {
  Log log(std::make_unique<MemLogStorage>(), false);
  for (uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(log.AppendRecord(SampleRecord(LogRecordType::kPsInsert, i)).ok());
  }
  int count = 0;
  ASSERT_TRUE(log.Replay([&](const LogRecord&) { return ++count < 2; }).ok());
  EXPECT_EQ(count, 2);
}

TEST(LogTest, GroupAppendIsContiguous) {
  Log log(std::make_unique<MemLogStorage>(), false);
  // Interleave a group with single records: the group's records replay
  // adjacently.
  ASSERT_TRUE(log.AppendRecord(SampleRecord(LogRecordType::kPsInsert, 1)).ok());
  std::string group;
  AppendLogRecord(&group, SampleRecord(LogRecordType::kImrsInsert, 42));
  AppendLogRecord(&group, SampleRecord(LogRecordType::kImrsCommit, 42));
  ASSERT_TRUE(log.AppendGroup(group, 2).ok());
  ASSERT_TRUE(log.AppendRecord(SampleRecord(LogRecordType::kPsInsert, 2)).ok());

  std::vector<uint64_t> seen;
  ASSERT_TRUE(log.Replay([&](const LogRecord& rec) {
                   seen.push_back(rec.txn_id);
                   return true;
                 })
                  .ok());
  EXPECT_EQ(seen, (std::vector<uint64_t>{1, 42, 42, 2}));
  EXPECT_EQ(log.GetStats().groups_appended, 1);
  EXPECT_EQ(log.GetStats().records_appended, 4);
}

TEST(LogTest, TruncateEmptiesReplay) {
  Log log(std::make_unique<MemLogStorage>(), false);
  ASSERT_TRUE(log.AppendRecord(SampleRecord(LogRecordType::kPsInsert)).ok());
  ASSERT_TRUE(log.Truncate().ok());
  int count = 0;
  ASSERT_TRUE(log.Replay([&](const LogRecord&) {
                   ++count;
                   return true;
                 })
                  .ok());
  EXPECT_EQ(count, 0);
  EXPECT_EQ(log.SizeBytes(), 0);
}

TEST(LogTest, CommitSyncsOnlyWhenConfigured) {
  const std::string path = ::testing::TempDir() + "/btrim_wal_sync_test.log";
  std::filesystem::remove(path);
  {
    auto storage = FileLogStorage::Open(path);
    ASSERT_TRUE(storage.ok());
    Log log(std::move(*storage), /*sync_on_commit=*/true);
    ASSERT_TRUE(log.AppendRecord(SampleRecord(LogRecordType::kPsCommit)).ok());
    ASSERT_TRUE(log.Commit().ok());
    EXPECT_EQ(log.GetStats().syncs, 1);
  }
  {
    auto storage = FileLogStorage::Open(path);
    ASSERT_TRUE(storage.ok());
    Log log(std::move(*storage), /*sync_on_commit=*/false);
    ASSERT_TRUE(log.Commit().ok());
    EXPECT_EQ(log.GetStats().syncs, 0);
  }
  std::filesystem::remove(path);
}

TEST(LogTest, RedundantCommitsElideTheSync) {
  const std::string path = ::testing::TempDir() + "/btrim_wal_elide_test.log";
  std::filesystem::remove(path);
  auto storage = FileLogStorage::Open(path);
  ASSERT_TRUE(storage.ok());
  Log log(std::move(*storage), /*sync_on_commit=*/true);

  // Nothing appended yet: Commit has nothing to make durable.
  ASSERT_TRUE(log.Commit().ok());
  EXPECT_EQ(log.GetStats().syncs, 0);
  EXPECT_EQ(log.GetStats().syncs_elided, 1);

  ASSERT_TRUE(log.AppendRecord(SampleRecord(LogRecordType::kPsCommit)).ok());
  ASSERT_TRUE(log.Commit().ok());
  EXPECT_EQ(log.GetStats().syncs, 1);

  // Clean log: the second Commit is a no-op.
  ASSERT_TRUE(log.Commit().ok());
  EXPECT_EQ(log.GetStats().syncs, 1);
  EXPECT_EQ(log.GetStats().syncs_elided, 2);

  // New append dirties the log again.
  ASSERT_TRUE(log.AppendRecord(SampleRecord(LogRecordType::kPsCommit)).ok());
  ASSERT_TRUE(log.Commit().ok());
  EXPECT_EQ(log.GetStats().syncs, 2);
  EXPECT_EQ(log.GetStats().syncs_elided, 2);
  std::filesystem::remove(path);
}

TEST(LogTest, SingleRecordAppendsDoNotDoubleSerialize) {
  Log log(std::make_unique<MemLogStorage>(), false);
  std::string scratch;
  ASSERT_TRUE(
      log.AppendRecord(SampleRecord(LogRecordType::kPsInsert, 1), &scratch)
          .ok());
  const size_t one_record = scratch.size();
  EXPECT_GT(one_record, 0u);
  // The scratch buffer holds exactly the serialized record (reused, not
  // re-allocated, across calls) and the log received exactly those bytes.
  ASSERT_TRUE(
      log.AppendRecord(SampleRecord(LogRecordType::kPsInsert, 2), &scratch)
          .ok());
  EXPECT_EQ(scratch.size(), one_record);
  EXPECT_EQ(log.GetStats().bytes_appended,
            static_cast<int64_t>(2 * one_record));
}

TEST(LogTest, ReplayIgnoresTornTail) {
  auto storage = std::make_unique<MemLogStorage>();
  MemLogStorage* raw = storage.get();
  Log log(std::move(storage), false);
  ASSERT_TRUE(log.AppendRecord(SampleRecord(LogRecordType::kPsInsert, 1)).ok());
  // A partial record at the tail (e.g. crash mid-write).
  ASSERT_TRUE(raw->Append(std::string(7, '\x01')).ok());
  int count = 0;
  ASSERT_TRUE(log.Replay([&](const LogRecord&) {
                   ++count;
                   return true;
                 })
                  .ok());
  EXPECT_EQ(count, 1);
}

}  // namespace
}  // namespace btrim
