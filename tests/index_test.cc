// Unit and property tests for the page-based B+Tree and the IMRS hash
// index.

#include <map>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/coding.h"
#include "common/random.h"
#include "index/btree.h"
#include "index/hash_index.h"
#include "page/device.h"

namespace btrim {
namespace {

std::string IntKey(uint64_t v) {
  std::string k;
  PutBigEndian64(&k, v);
  return k;
}

class BTreeTest : public ::testing::Test {
 protected:
  BTreeTest() : cache_(256), tree_(1, &cache_, /*unique=*/true) {
    cache_.AttachDevice(1, &dev_);
    EXPECT_TRUE(tree_.Create().ok());
  }
  MemDevice dev_;
  BufferCache cache_;
  BTree tree_;
};

TEST_F(BTreeTest, InsertAndSearch) {
  ASSERT_TRUE(tree_.Insert("apple", 1).ok());
  ASSERT_TRUE(tree_.Insert("banana", 2).ok());
  Result<uint64_t> v = tree_.Search("apple");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 1u);
  EXPECT_TRUE(tree_.Search("cherry").status().IsNotFound());
}

TEST_F(BTreeTest, DuplicateKeyRejected) {
  ASSERT_TRUE(tree_.Insert("k", 1).ok());
  EXPECT_TRUE(tree_.Insert("k", 2).IsAlreadyExists());
  EXPECT_EQ(*tree_.Search("k"), 1u);
}

TEST_F(BTreeTest, UpdateValueInPlace) {
  ASSERT_TRUE(tree_.Insert("k", 1).ok());
  ASSERT_TRUE(tree_.UpdateValue("k", 99).ok());
  EXPECT_EQ(*tree_.Search("k"), 99u);
  EXPECT_TRUE(tree_.UpdateValue("absent", 1).IsNotFound());
}

TEST_F(BTreeTest, DeleteRemovesEntry) {
  ASSERT_TRUE(tree_.Insert("k", 1).ok());
  ASSERT_TRUE(tree_.Delete("k").ok());
  EXPECT_TRUE(tree_.Search("k").status().IsNotFound());
  EXPECT_TRUE(tree_.Delete("k").IsNotFound());
  // Key can come back after deletion.
  ASSERT_TRUE(tree_.Insert("k", 2).ok());
  EXPECT_EQ(*tree_.Search("k"), 2u);
}

TEST_F(BTreeTest, ManyKeysForceSplits) {
  constexpr int kKeys = 20000;
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(tree_.Insert(IntKey(static_cast<uint64_t>(i)), i * 10).ok())
        << "key " << i;
  }
  BTreeStats stats = tree_.GetStats();
  EXPECT_GT(stats.splits, 0);
  EXPECT_GT(stats.height, 1);
  for (int i = 0; i < kKeys; i += 97) {
    Result<uint64_t> v = tree_.Search(IntKey(static_cast<uint64_t>(i)));
    ASSERT_TRUE(v.ok()) << "key " << i;
    EXPECT_EQ(*v, static_cast<uint64_t>(i * 10));
  }
}

TEST_F(BTreeTest, ScanReturnsSortedRange) {
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(tree_.Insert(IntKey(static_cast<uint64_t>(i)), i).ok());
  }
  std::vector<std::pair<std::string, uint64_t>> out;
  ASSERT_TRUE(tree_.Scan(IntKey(100), IntKey(200), 0, &out).ok());
  ASSERT_EQ(out.size(), 100u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].second, 100 + i);
    if (i > 0) {
      EXPECT_LT(out[i - 1].first, out[i].first);
    }
  }
}

TEST_F(BTreeTest, ScanWithLimitAndOpenEnd) {
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(tree_.Insert(IntKey(static_cast<uint64_t>(i)), i).ok());
  }
  std::vector<std::pair<std::string, uint64_t>> out;
  ASSERT_TRUE(tree_.Scan(IntKey(490), Slice(), 0, &out).ok());
  EXPECT_EQ(out.size(), 10u);
  out.clear();
  ASSERT_TRUE(tree_.Scan(IntKey(0), Slice(), 7, &out).ok());
  EXPECT_EQ(out.size(), 7u);
}

TEST_F(BTreeTest, ScanPrefix) {
  ASSERT_TRUE(tree_.Insert("user:1", 1).ok());
  ASSERT_TRUE(tree_.Insert("user:2", 2).ok());
  ASSERT_TRUE(tree_.Insert("user:3", 3).ok());
  ASSERT_TRUE(tree_.Insert("uzer:9", 9).ok());
  std::vector<std::pair<std::string, uint64_t>> out;
  ASSERT_TRUE(tree_.ScanPrefix("user:", 0, &out).ok());
  EXPECT_EQ(out.size(), 3u);
}

TEST_F(BTreeTest, EmptyTreeBehaviour) {
  EXPECT_TRUE(tree_.Search("x").status().IsNotFound());
  std::vector<std::pair<std::string, uint64_t>> out;
  ASSERT_TRUE(tree_.Scan(Slice(), Slice(), 0, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST_F(BTreeTest, OversizedKeyRejected) {
  std::string huge(BTree::kMaxKeySize + 1, 'k');
  EXPECT_TRUE(tree_.Insert(huge, 1).IsInvalidArgument());
}

TEST_F(BTreeTest, VariableLengthKeysKeepMemcmpOrder) {
  ASSERT_TRUE(tree_.Insert("a", 1).ok());
  ASSERT_TRUE(tree_.Insert("aa", 2).ok());
  ASSERT_TRUE(tree_.Insert("b", 3).ok());
  ASSERT_TRUE(tree_.Insert("ab", 4).ok());
  std::vector<std::pair<std::string, uint64_t>> out;
  ASSERT_TRUE(tree_.Scan(Slice(), Slice(), 0, &out).ok());
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].first, "a");
  EXPECT_EQ(out[1].first, "aa");
  EXPECT_EQ(out[2].first, "ab");
  EXPECT_EQ(out[3].first, "b");
}

TEST_F(BTreeTest, MakeNonUniqueKeyDisambiguates) {
  BTree multi(2, &cache_, /*unique=*/false);
  MemDevice dev2;
  cache_.AttachDevice(2, &dev2);
  ASSERT_TRUE(multi.Create().ok());
  const Rid r1{1, 10, 1}, r2{1, 10, 2};
  ASSERT_TRUE(multi.Insert(BTree::MakeNonUniqueKey("dup", r1), r1.Encode()).ok());
  ASSERT_TRUE(multi.Insert(BTree::MakeNonUniqueKey("dup", r2), r2.Encode()).ok());
  std::vector<std::pair<std::string, uint64_t>> out;
  ASSERT_TRUE(multi.ScanPrefix("dup", 0, &out).ok());
  EXPECT_EQ(out.size(), 2u);
}

// Property test: random inserts/deletes mirror std::map across thousands of
// operations, with periodic full-order verification.
TEST_F(BTreeTest, RandomizedMirrorsReferenceMap) {
  Random rng(2024);
  std::map<std::string, uint64_t> reference;
  for (int i = 0; i < 20000; ++i) {
    const uint64_t k = rng.Uniform(5000);
    const std::string key = IntKey(k);
    if (rng.Uniform(100) < 70) {
      Status s = tree_.Insert(key, k);
      if (reference.count(key)) {
        EXPECT_TRUE(s.IsAlreadyExists());
      } else {
        EXPECT_TRUE(s.ok());
        reference[key] = k;
      }
    } else {
      Status s = tree_.Delete(key);
      if (reference.count(key)) {
        EXPECT_TRUE(s.ok());
        reference.erase(key);
      } else {
        EXPECT_TRUE(s.IsNotFound());
      }
    }
  }
  std::vector<std::pair<std::string, uint64_t>> out;
  ASSERT_TRUE(tree_.Scan(Slice(), Slice(), 0, &out).ok());
  ASSERT_EQ(out.size(), reference.size());
  auto it = reference.begin();
  for (size_t i = 0; i < out.size(); ++i, ++it) {
    EXPECT_EQ(out[i].first, it->first);
    EXPECT_EQ(out[i].second, it->second);
  }
}

TEST_F(BTreeTest, ConcurrentReadersDuringWrites) {
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(tree_.Insert(IntKey(static_cast<uint64_t>(i * 2)), 1).ok());
  }
  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};
  std::thread writer([&] {
    for (int i = 0; i < 2000; ++i) {
      if (!tree_.Insert(IntKey(static_cast<uint64_t>(i * 2 + 1)), 2).ok()) {
        failed = true;
      }
    }
    stop = true;
  });
  std::thread reader([&] {
    Random rng(5);
    while (!stop.load()) {
      const uint64_t k = rng.Uniform(2000) * 2;  // always-present keys
      if (!tree_.Search(IntKey(k)).ok()) failed = true;
    }
  });
  writer.join();
  reader.join();
  EXPECT_FALSE(failed.load());
}

// Parameterized: keys inserted in different orders all produce the same
// sorted scan (split paths differ by order).
class BTreeOrderSweep : public ::testing::TestWithParam<int> {};

TEST_P(BTreeOrderSweep, InsertionOrderInvariance) {
  MemDevice dev;
  BufferCache cache(256);
  cache.AttachDevice(1, &dev);
  BTree tree(1, &cache, true);
  ASSERT_TRUE(tree.Create().ok());

  constexpr int kKeys = 3000;
  std::vector<uint64_t> keys(kKeys);
  for (int i = 0; i < kKeys; ++i) keys[i] = static_cast<uint64_t>(i);
  switch (GetParam()) {
    case 0:  // ascending
      break;
    case 1:  // descending
      std::reverse(keys.begin(), keys.end());
      break;
    case 2: {  // shuffled
      Random rng(42);
      for (size_t i = keys.size(); i > 1; --i) {
        std::swap(keys[i - 1], keys[rng.Uniform(i)]);
      }
      break;
    }
    case 3: {  // zig-zag from both ends
      std::vector<uint64_t> zz;
      for (int lo = 0, hi = kKeys - 1; lo <= hi; ++lo, --hi) {
        zz.push_back(static_cast<uint64_t>(lo));
        if (lo != hi) zz.push_back(static_cast<uint64_t>(hi));
      }
      keys = zz;
      break;
    }
  }
  for (uint64_t k : keys) {
    ASSERT_TRUE(tree.Insert(IntKey(k), k).ok());
  }
  std::vector<std::pair<std::string, uint64_t>> out;
  ASSERT_TRUE(tree.Scan(Slice(), Slice(), 0, &out).ok());
  ASSERT_EQ(out.size(), static_cast<size_t>(kKeys));
  for (int i = 0; i < kKeys; ++i) {
    EXPECT_EQ(out[static_cast<size_t>(i)].second, static_cast<uint64_t>(i));
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, BTreeOrderSweep, ::testing::Values(0, 1, 2, 3));

// --- HashIndex ---------------------------------------------------------------------

TEST(HashIndexTest, UpsertLookupErase) {
  HashIndex<int*> index(64);
  int a = 1, b = 2;
  index.Upsert("k1", &a);
  index.Upsert("k2", &b);
  EXPECT_EQ(index.Lookup("k1"), &a);
  EXPECT_EQ(index.Lookup("k3", nullptr), nullptr);
  EXPECT_EQ(index.Size(), 2);
  EXPECT_TRUE(index.Erase("k1"));
  EXPECT_FALSE(index.Erase("k1"));
  EXPECT_EQ(index.Lookup("k1", nullptr), nullptr);
  EXPECT_EQ(index.Size(), 1);
}

TEST(HashIndexTest, UpsertOverwrites) {
  HashIndex<int> index(64);
  index.Upsert("k", 1);
  index.Upsert("k", 2);
  EXPECT_EQ(index.Lookup("k"), 2);
  EXPECT_EQ(index.Size(), 1);
}

TEST(HashIndexTest, ContainsAndStats) {
  HashIndex<int> index(64);
  index.Upsert("a", 1);
  EXPECT_TRUE(index.Contains("a"));
  EXPECT_FALSE(index.Contains("b"));
  (void)index.Lookup("a");
  (void)index.Lookup("b");
  HashIndexStats s = index.GetStats();
  EXPECT_EQ(s.inserts, 1);
  EXPECT_EQ(s.lookups, 2);
  EXPECT_EQ(s.hits, 1);
}

TEST(HashIndexTest, ManyKeysAcrossBuckets) {
  HashIndex<uint64_t> index(16);  // force long chains
  for (uint64_t i = 0; i < 5000; ++i) {
    index.Upsert(IntKey(i), i);
  }
  EXPECT_EQ(index.Size(), 5000);
  for (uint64_t i = 0; i < 5000; i += 37) {
    EXPECT_EQ(index.Lookup(IntKey(i)), i);
  }
}

TEST(HashIndexTest, ConcurrentMixedOps) {
  HashIndex<uint64_t> index(1024);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&index, t] {
      // Each thread owns a disjoint key space: exact final state checkable.
      const uint64_t base = static_cast<uint64_t>(t) * 100000;
      for (uint64_t i = 0; i < 2000; ++i) {
        index.Upsert(IntKey(base + i), i);
      }
      for (uint64_t i = 0; i < 2000; i += 2) {
        index.Erase(IntKey(base + i));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(index.Size(), kThreads * 1000);
  EXPECT_EQ(index.Lookup(IntKey(1), 0u), 1u);
  EXPECT_EQ(index.Lookup(IntKey(2), 999u), 999u);
}

}  // namespace
}  // namespace btrim
