// TPC-C substrate tests: generator conformance, transaction correctness,
// and database-consistency invariants after a driven run.

#include <set>

#include <gtest/gtest.h>

#include "tpcc/driver.h"
#include "tpcc/loader.h"
#include "tpcc/tpcc_random.h"

namespace btrim {
namespace tpcc {
namespace {

Scale TinyScale() {
  Scale s;
  s.warehouses = 1;
  s.districts_per_warehouse = 4;
  s.customers_per_district = 30;
  s.items = 100;
  s.orders_per_district = 30;
  return s;
}

class TpccTest : public ::testing::Test {
 protected:
  void Open(bool ilm_enabled = true) {
    DatabaseOptions options;
    options.buffer_cache_frames = 2048;
    options.imrs_cache_bytes = 64 << 20;
    options.ilm.ilm_enabled = ilm_enabled;
    options.lock_timeout_ms = 200;
    Result<std::unique_ptr<Database>> opened = Database::Open(options);
    ASSERT_TRUE(opened.ok());
    db_ = std::move(*opened);

    scale_ = TinyScale();
    Result<Tables> tables = CreateTables(db_.get(), scale_);
    ASSERT_TRUE(tables.ok()) << tables.status().ToString();
    tables_ = *tables;
    ASSERT_TRUE(LoadDatabase(db_.get(), tables_, scale_).ok());

    ctx_.db = db_.get();
    ctx_.tables = tables_;
    ctx_.scale = scale_;
    ctx_.next_history_id = static_cast<int64_t>(scale_.warehouses) *
                               scale_.districts_per_warehouse *
                               scale_.customers_per_district +
                           1;
  }

  /// Counts visible rows of `table` via a full primary scan.
  int64_t CountRows(Table* table) {
    auto txn = db_->Begin();
    std::vector<ScanRow> rows;
    Status s = db_->ScanIndex(txn.get(), table, -1, Slice(), Slice(), 0,
                              &rows);
    Status c = db_->Commit(txn.get());
    (void)c;
    EXPECT_TRUE(s.ok());
    return static_cast<int64_t>(rows.size());
  }

  std::unique_ptr<Database> db_;
  Scale scale_;
  Tables tables_;
  TpccContext ctx_;
};

// --- random primitives -------------------------------------------------------------

TEST(TpccRandomTest, NURandStaysInRange) {
  TpccRandom rnd(1);
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rnd.NURand(1023, 1, 3000);
    ASSERT_GE(v, 1);
    ASSERT_LE(v, 3000);
  }
}

TEST(TpccRandomTest, NURandIsSkewed) {
  // NURand produces a non-uniform distribution: the most popular single
  // value should appear far above the uniform expectation.
  TpccRandom rnd(2);
  std::map<int64_t, int> histogram;
  constexpr int kTrials = 30000;
  for (int i = 0; i < kTrials; ++i) {
    histogram[rnd.NURand(255, 0, 999)]++;
  }
  int max_count = 0;
  for (const auto& [v, c] : histogram) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, 3 * kTrials / 1000);  // > 3x uniform share
}

TEST(TpccRandomTest, LastNameSyllables) {
  EXPECT_EQ(TpccRandom::LastName(0), "BARBARBAR");
  EXPECT_EQ(TpccRandom::LastName(371), "PRICALLYOUGHT");
  EXPECT_EQ(TpccRandom::LastName(999), "EINGEINGEING");
}

TEST(TpccRandomTest, StringsHonourLengthBounds) {
  TpccRandom rnd(3);
  for (int i = 0; i < 200; ++i) {
    const std::string a = rnd.AString(5, 12);
    EXPECT_GE(a.size(), 5u);
    EXPECT_LE(a.size(), 12u);
    const std::string n = rnd.NString(4, 4);
    EXPECT_EQ(n.size(), 4u);
    for (char c : n) EXPECT_TRUE(c >= '0' && c <= '9');
  }
  EXPECT_EQ(rnd.Zip().size(), 9u);
}

// --- loader --------------------------------------------------------------------------

TEST_F(TpccTest, LoaderPopulatesSpecCardinalities) {
  Open();
  const int64_t districts = static_cast<int64_t>(scale_.warehouses) *
                            scale_.districts_per_warehouse;
  EXPECT_EQ(CountRows(tables_.warehouse), scale_.warehouses);
  EXPECT_EQ(CountRows(tables_.district), districts);
  EXPECT_EQ(CountRows(tables_.customer),
            districts * scale_.customers_per_district);
  EXPECT_EQ(CountRows(tables_.history),
            districts * scale_.customers_per_district);
  EXPECT_EQ(CountRows(tables_.item), scale_.items);
  EXPECT_EQ(CountRows(tables_.stock),
            static_cast<int64_t>(scale_.warehouses) * scale_.items);
  EXPECT_EQ(CountRows(tables_.orders), districts * scale_.orders_per_district);
  // The newest third of each district's orders is undelivered.
  EXPECT_EQ(CountRows(tables_.new_orders),
            districts * (scale_.orders_per_district / 3));
  // 5..15 lines per order.
  const int64_t lines = CountRows(tables_.order_line);
  EXPECT_GE(lines, districts * scale_.orders_per_district * 5);
  EXPECT_LE(lines, districts * scale_.orders_per_district * 15);
}

TEST_F(TpccTest, LoaderTargetsPageStore) {
  Open();
  // Bulk load leaves the IMRS empty: the workload pulls hot data in later.
  EXPECT_EQ(db_->rid_map()->Size(), 0);
  EXPECT_EQ(db_->imrs_allocator()->InUseBytes(), 0);
}

TEST_F(TpccTest, DistrictNextOidMatchesLoadedOrders) {
  Open();
  auto txn = db_->Begin();
  std::string drow;
  ASSERT_TRUE(db_->SelectByKey(txn.get(), tables_.district,
                               tables_.district->pk_encoder().KeyForInts(
                                   {1, 1}),
                               &drow)
                  .ok());
  RecordView v(&tables_.district->schema(), Slice(drow));
  EXPECT_EQ(v.GetInt(dist::kNextOId), scale_.orders_per_district + 1);
  ASSERT_TRUE(db_->Commit(txn.get()).ok());
}

// --- transactions ----------------------------------------------------------------------

TEST_F(TpccTest, NewOrderCreatesOrderRows) {
  Open();
  TpccRandom rnd(11);
  const int64_t orders_before = CountRows(tables_.orders);
  const int64_t new_orders_before = CountRows(tables_.new_orders);

  TxnResult r = RunNewOrder(&ctx_, &rnd, 1);
  ASSERT_TRUE(r.committed || r.user_abort) << r.status.ToString();
  if (r.committed) {
    EXPECT_EQ(CountRows(tables_.orders), orders_before + 1);
    EXPECT_EQ(CountRows(tables_.new_orders), new_orders_before + 1);
  }
}

TEST_F(TpccTest, NewOrderAdvancesDistrictCounter) {
  Open();
  TpccRandom rnd(12);
  int committed = 0;
  for (int i = 0; i < 20; ++i) {
    TxnResult r = RunNewOrder(&ctx_, &rnd, 1);
    if (r.committed) ++committed;
  }
  ASSERT_GT(committed, 0);
  // Sum of (d_next_o_id - initial) across districts == committed orders.
  int64_t advanced = 0;
  auto txn = db_->Begin();
  for (int d = 1; d <= scale_.districts_per_warehouse; ++d) {
    std::string drow;
    ASSERT_TRUE(db_->SelectByKey(txn.get(), tables_.district,
                                 tables_.district->pk_encoder().KeyForInts(
                                     {1, d}),
                                 &drow)
                    .ok());
    RecordView v(&tables_.district->schema(), Slice(drow));
    advanced += v.GetInt(dist::kNextOId) - (scale_.orders_per_district + 1);
  }
  ASSERT_TRUE(db_->Commit(txn.get()).ok());
  EXPECT_EQ(advanced, committed);
}

TEST_F(TpccTest, PaymentUpdatesYtdChain) {
  Open();
  TpccRandom rnd(13);
  auto read_w_ytd = [&]() {
    auto txn = db_->Begin();
    std::string wrow;
    EXPECT_TRUE(db_->SelectByKey(txn.get(), tables_.warehouse,
                                 tables_.warehouse->pk_encoder().KeyForInts(
                                     {1}),
                                 &wrow)
                    .ok());
    Status c = db_->Commit(txn.get());
    (void)c;
    RecordView v(&tables_.warehouse->schema(), Slice(wrow));
    return v.GetDouble(wh::kYtd);
  };
  const double before = read_w_ytd();
  int committed = 0;
  for (int i = 0; i < 10; ++i) {
    TxnResult r = RunPayment(&ctx_, &rnd, 1);
    if (r.committed) ++committed;
  }
  ASSERT_GT(committed, 0);
  EXPECT_GT(read_w_ytd(), before);
  // Payments also append history rows.
  const int64_t districts = static_cast<int64_t>(scale_.warehouses) *
                            scale_.districts_per_warehouse;
  EXPECT_EQ(CountRows(tables_.history),
            districts * scale_.customers_per_district + committed);
}

TEST_F(TpccTest, OrderStatusIsReadOnly) {
  Open();
  TpccRandom rnd(14);
  const int64_t committed_before = db_->GetStats().txns.committed;
  TxnResult r = RunOrderStatus(&ctx_, &rnd, 1);
  EXPECT_TRUE(r.committed) << r.status.ToString();
  EXPECT_EQ(db_->GetStats().txns.committed, committed_before + 1);
  // No table grew.
  EXPECT_EQ(CountRows(tables_.orders),
            static_cast<int64_t>(scale_.warehouses) *
                scale_.districts_per_warehouse * scale_.orders_per_district);
}

TEST_F(TpccTest, DeliveryDrainsNewOrders) {
  Open();
  TpccRandom rnd(15);
  const int64_t pending_before = CountRows(tables_.new_orders);
  TxnResult r = RunDelivery(&ctx_, &rnd, 1);
  ASSERT_TRUE(r.committed) << r.status.ToString();
  // One order per district delivered.
  EXPECT_EQ(CountRows(tables_.new_orders),
            pending_before - scale_.districts_per_warehouse);
}

TEST_F(TpccTest, DeliverySetsCarrierOnOldestOrder) {
  Open();
  TpccRandom rnd(16);
  // The oldest undelivered order in district 1 (loaded as delivered for
  // the first 2/3) is orders_per_district*2/3 + 1.
  const int oldest =
      scale_.orders_per_district - scale_.orders_per_district / 3 + 1;
  TxnResult r = RunDelivery(&ctx_, &rnd, 1);
  ASSERT_TRUE(r.committed);
  auto txn = db_->Begin();
  std::string orow;
  ASSERT_TRUE(db_->SelectByKey(txn.get(), tables_.orders,
                               tables_.orders->pk_encoder().KeyForInts(
                                   {1, 1, oldest}),
                               &orow)
                  .ok());
  RecordView v(&tables_.orders->schema(), Slice(orow));
  EXPECT_GT(v.GetInt(ord::kCarrierId), 0);
  ASSERT_TRUE(db_->Commit(txn.get()).ok());
}

TEST_F(TpccTest, StockLevelIsReadOnly) {
  Open();
  TpccRandom rnd(17);
  TxnResult r = RunStockLevel(&ctx_, &rnd, 1);
  EXPECT_TRUE(r.committed) << r.status.ToString();
}

// --- driver + consistency ----------------------------------------------------------------

TEST_F(TpccTest, DriverRunsTheMixAndMaintainsInvariants) {
  Open();
  db_->StartBackground();
  DriverOptions dopt;
  dopt.workers = 2;
  dopt.total_txns = 1500;
  dopt.window_txns = 0;
  TpccDriver driver(&ctx_, dopt);
  DriverStats stats = driver.Run();
  db_->StopBackground();

  EXPECT_GE(stats.committed, dopt.total_txns);
  // The mix is honoured approximately (NewOrder ~45%, Payment ~43%).
  EXPECT_GT(stats.by_type[0], stats.committed * 30 / 100);
  EXPECT_GT(stats.by_type[1], stats.committed * 28 / 100);
  EXPECT_GT(stats.by_type[2], 0);
  EXPECT_GT(stats.by_type[3], 0);
  EXPECT_GT(stats.by_type[4], 0);

  // Consistency condition 1 (spec 3.3.2.1): for every district,
  // d_next_o_id - 1 == max(o_id) == max(no_o_id is <= that).
  auto txn = db_->Begin();
  for (int d = 1; d <= scale_.districts_per_warehouse; ++d) {
    std::string drow;
    ASSERT_TRUE(db_->SelectByKey(txn.get(), tables_.district,
                                 tables_.district->pk_encoder().KeyForInts(
                                     {1, d}),
                                 &drow)
                    .ok());
    RecordView dv(&tables_.district->schema(), Slice(drow));
    const int64_t next_o_id = dv.GetInt(dist::kNextOId);

    std::vector<ScanRow> orders;
    std::string lower, upper;
    KeyEncoder::AppendInt(&lower, 1);
    KeyEncoder::AppendInt(&lower, d);
    KeyEncoder::AppendInt(&upper, 1);
    KeyEncoder::AppendInt(&upper, d + 1);
    ASSERT_TRUE(db_->ScanIndex(txn.get(), tables_.orders, -1, Slice(lower),
                               Slice(upper), 0, &orders)
                    .ok());
    int64_t max_o_id = 0;
    for (const ScanRow& r : orders) {
      RecordView ov(&tables_.orders->schema(), Slice(r.payload));
      max_o_id = std::max<int64_t>(max_o_id, ov.GetInt(ord::kOId));
    }
    EXPECT_EQ(max_o_id, next_o_id - 1) << "district " << d;

    // Every new_orders entry refers to an existing order.
    std::vector<ScanRow> pending;
    ASSERT_TRUE(db_->ScanIndex(txn.get(), tables_.new_orders, -1,
                               Slice(lower), Slice(upper), 0, &pending)
                    .ok());
    for (const ScanRow& r : pending) {
      RecordView nv(&tables_.new_orders->schema(), Slice(r.payload));
      EXPECT_LE(nv.GetInt(no::kOId), max_o_id);
    }
  }
  ASSERT_TRUE(db_->Commit(txn.get()).ok());

  // Every committed NewOrder added ol_cnt order lines (spec 3.3.2.8-ish):
  // each order's ol_cnt matches its actual line count.
  auto txn2 = db_->Begin();
  std::vector<ScanRow> all_orders;
  ASSERT_TRUE(db_->ScanIndex(txn2.get(), tables_.orders, -1, Slice(), Slice(),
                             50, &all_orders)
                  .ok());
  for (const ScanRow& r : all_orders) {
    RecordView ov(&tables_.orders->schema(), Slice(r.payload));
    std::string lower, upper;
    KeyEncoder::AppendInt(&lower, ov.GetInt(ord::kWId));
    KeyEncoder::AppendInt(&lower, ov.GetInt(ord::kDId));
    KeyEncoder::AppendInt(&lower, ov.GetInt(ord::kOId));
    upper = lower;
    KeyEncoder::AppendInt(&lower, 0);
    KeyEncoder::AppendInt(&upper, 1 << 20);
    std::vector<ScanRow> lines;
    ASSERT_TRUE(db_->ScanIndex(txn2.get(), tables_.order_line, -1,
                               Slice(lower), Slice(upper), 0, &lines)
                    .ok());
    EXPECT_EQ(static_cast<int64_t>(lines.size()), ov.GetInt(ord::kOlCnt));
  }
  ASSERT_TRUE(db_->Commit(txn2.get()).ok());
}

TEST_F(TpccTest, HotTablesMigrateIntoImrs) {
  Open();
  TpccRandom rnd(19);
  for (int i = 0; i < 100; ++i) {
    RunPayment(&ctx_, &rnd, 1);
  }
  // warehouse and district rows are updated by every payment: they must be
  // IMRS-resident by now.
  PartitionState* wh_state = tables_.warehouse->partition(0).ilm;
  PartitionState* dist_state = tables_.district->partition(0).ilm;
  EXPECT_EQ(wh_state->metrics.imrs_rows.Load(), scale_.warehouses);
  EXPECT_GT(dist_state->metrics.imrs_rows.Load(), 0);
  EXPECT_GT(wh_state->metrics.reuse_update.Load(), 0);
}

TEST_F(TpccTest, IlmOffKeepsEverythingTouchedInMemory) {
  Open(/*ilm_enabled=*/false);
  TpccRandom rnd(20);
  for (int i = 0; i < 50; ++i) {
    RunNewOrder(&ctx_, &rnd, 1);
    RunPayment(&ctx_, &rnd, 1);
  }
  // With ILM off nothing is ever packed.
  EXPECT_EQ(db_->GetStats().pack.rows_packed, 0);
  EXPECT_GT(db_->rid_map()->Size(), 0);
}

TEST(TpccPartitionedTest, WarehousePartitioningRunsAndIsolatesMetrics) {
  DatabaseOptions options;
  options.buffer_cache_frames = 2048;
  options.imrs_cache_bytes = 64 << 20;
  options.lock_timeout_ms = 200;
  std::unique_ptr<Database> db = std::move(*Database::Open(options));

  Scale scale = TinyScale();
  scale.warehouses = 3;
  scale.partition_by_warehouse = true;
  Result<Tables> tables = CreateTables(db.get(), scale);
  ASSERT_TRUE(tables.ok());
  ASSERT_EQ(tables->stock->num_partitions(), 3u);
  ASSERT_EQ(tables->item->num_partitions(), 1u);  // no warehouse column
  ASSERT_TRUE(LoadDatabase(db.get(), *tables, scale).ok());

  TpccContext ctx;
  ctx.db = db.get();
  ctx.tables = *tables;
  ctx.scale = scale;
  ctx.next_history_id = static_cast<int64_t>(scale.warehouses) *
                            scale.districts_per_warehouse *
                            scale.customers_per_district +
                        1;

  DriverOptions dopt;
  dopt.workers = 2;
  dopt.total_txns = 600;
  dopt.window_txns = 0;
  TpccDriver driver(&ctx, dopt);
  DriverStats stats = driver.Run();
  EXPECT_GE(stats.committed, 600);

  // Each warehouse partition of stock accumulated its own IMRS activity
  // (the hash routing w_id % 3 spreads warehouses 1..3 over partitions).
  int64_t total_rows = 0;
  int partitions_with_activity = 0;
  for (size_t p = 0; p < 3; ++p) {
    PartitionState* state = tables->stock->partition(p).ilm;
    total_rows += state->metrics.imrs_rows.Load();
    if (state->metrics.Snapshot().NewRows() > 0) ++partitions_with_activity;
  }
  EXPECT_GT(total_rows, 0);
  EXPECT_EQ(partitions_with_activity, 3);
}

TEST_F(TpccTest, DriverReportsCommitLatencies) {
  Open();
  DriverOptions dopt;
  dopt.workers = 2;
  dopt.total_txns = 300;
  dopt.window_txns = 0;
  TpccDriver driver(&ctx_, dopt);
  DriverStats stats = driver.Run();
  EXPECT_GT(stats.latency_p50_us, 0);
  EXPECT_GE(stats.latency_p95_us, stats.latency_p50_us);
  EXPECT_GE(stats.latency_p99_us, stats.latency_p95_us);
  EXPECT_GT(stats.latency_mean_us, 0.0);
}

TEST_F(TpccTest, DeterministicSeedsGiveDeterministicTransactions) {
  Open();
  TpccRandom a(42), b(42);
  EXPECT_EQ(a.Uniform(1, 1000), b.Uniform(1, 1000));
  EXPECT_EQ(a.NURand(8191, 1, 100000), b.NURand(8191, 1, 100000));
  EXPECT_EQ(a.AString(5, 20), b.AString(5, 20));
}

}  // namespace
}  // namespace tpcc
}  // namespace btrim
