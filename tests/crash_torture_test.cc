// Crash-point torture tests for recovery (default-suite slice).
//
// These tests replay the deterministic torture workload (src/testing/
// torture.h) with a scripted crash at selected storage operations, then
// recover and verify that acknowledged commits survive exactly, the
// at-most-one indeterminate transaction resolves atomically, and nothing
// aborted resurfaces. The full sweep (every sync boundary plus hundreds of
// seeded points per seed) lives in tools/torture; this suite keeps a
// representative slice fast enough for every `ctest` run.
//
// Every assertion message carries (seed, crash_op): replay a failure with
//   tools/torture --seed S --crash-op K
// (add BTRIM_TORTURE_VERBOSE=1 for a transaction-by-transaction narration).

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "testing/torture.h"

namespace btrim {
namespace {

// Allocates a per-test scratch directory, removed on destruction unless the
// test failed (a failing run's data dir is the replay evidence).
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag)
      : path_(::testing::TempDir() + "/btrim_crash_torture_" + tag) {}
  ~ScratchDir() {
    if (!::testing::Test::HasFailure()) {
      std::error_code ec;
      std::filesystem::remove_all(path_, ec);
    }
  }
  const std::string& path() const { return path_; }

 private:
  const std::string path_;
};

// Crash at every sync boundary of the seed-1 workload. Syncs are the
// durability lines: immediately before one, the un-synced state is at its
// largest; crashing *on* it exercises the torn-tail flush.
TEST(CrashTortureTest, EverySyncBoundarySeedOne) {
  ScratchDir dir("sync_sweep");
  testing::TortureConfig config;
  config.dir = dir.path();
  config.workload_seed = 1;

  std::vector<TraceEntry> trace;
  Result<uint64_t> total = testing::CountStorageOps(config, &trace);
  ASSERT_TRUE(total.ok()) << total.status().ToString();
  ASSERT_GT(*total, 0u);

  int sync_points = 0;
  for (uint64_t i = 0; i < trace.size(); ++i) {
    if (trace[i].op != FaultOp::kSync) continue;
    ++sync_points;
    testing::TortureStats stats;
    Status s = testing::RunCrashPoint(config, i, &stats);
    EXPECT_TRUE(s.ok()) << "seed=" << config.workload_seed << " crash_op=" << i
                        << " (" << trace[i].target
                        << "): " << s.ToString();
  }
  // The workload checkpoints and sync-commits, so sync boundaries must be
  // plentiful — a near-empty sweep means the harness went quiet, not that
  // recovery got perfect.
  EXPECT_GT(sync_points, 50);
}

// Property-style randomized sweep: 50 seeds, each with a handful of seeded
// crash points drawn over that seed's own op sequence. Failures print the
// exact (seed, crash_op) pair for replay.
TEST(CrashTortureTest, FiftySeedsRandomCrashPoints) {
  constexpr uint64_t kSeeds = 50;
  constexpr int kPointsPerSeed = 3;

  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    ScratchDir dir("prop_" + std::to_string(seed));
    testing::TortureConfig config;
    config.dir = dir.path();
    config.workload_seed = seed;

    Result<uint64_t> total = testing::CountStorageOps(config);
    ASSERT_TRUE(total.ok())
        << "seed=" << seed << ": " << total.status().ToString();
    ASSERT_GT(*total, 0u) << "seed=" << seed;

    Random rng(seed * 0x9e3779b97f4a7c15ULL + 1);
    for (int p = 0; p < kPointsPerSeed; ++p) {
      const uint64_t crash_op = rng.Uniform(*total);
      testing::TortureStats stats;
      Status s = testing::RunCrashPoint(config, crash_op, &stats);
      EXPECT_TRUE(s.ok()) << "seed=" << seed << " crash_op=" << crash_op
                          << ": " << s.ToString();
      // The sweep must exercise real recoveries, not no-op ones.
      EXPECT_TRUE(stats.crash_fired)
          << "seed=" << seed << " crash_op=" << crash_op;
    }
  }
}

// Overlapped-checkpoint torture: checkpoints run on their own thread while
// the writer keeps committing, so crash points land inside an in-flight
// checkpoint — after the begin barrier became durable, mid-snapshot-walk,
// or with the end record torn. The recovery contract is unchanged and
// interleaving-independent: the recovered state must be a consistent cut
// (exactly the acknowledged commits), never a mix of snapshot and live
// state. Crash points are drawn from sysimrslogs operations of a traced
// run — that is where begin records, snapshot chunks, and end records go —
// plus seeded extras over the whole op range.
TEST(CrashTortureTest, OverlappedCheckpointCrashPoints) {
  constexpr int kLogPoints = 12;
  constexpr int kRandomPoints = 6;

  ScratchDir dir("overlap");
  testing::TortureConfig config;
  config.dir = dir.path();
  config.workload_seed = 3;
  config.overlapped_checkpoints = true;

  std::vector<TraceEntry> trace;
  Result<uint64_t> total = testing::CountStorageOps(config, &trace);
  ASSERT_TRUE(total.ok()) << total.status().ToString();
  ASSERT_GT(*total, 0u);

  // Indexes of operations against the IMRS log (interleaving shifts them a
  // little run to run, but they stay dense inside checkpoint activity).
  std::vector<uint64_t> log_ops;
  for (uint64_t i = 0; i < trace.size(); ++i) {
    if (trace[i].target.find("sysimrslogs") != std::string::npos) {
      log_ops.push_back(i);
    }
  }
  ASSERT_GT(log_ops.size(), 0u);

  std::vector<uint64_t> points;
  const size_t stride = std::max<size_t>(1, log_ops.size() / kLogPoints);
  for (size_t i = 0; i < log_ops.size(); i += stride) {
    points.push_back(log_ops[i]);
  }
  Random rng(0x0bef0bef);
  for (int p = 0; p < kRandomPoints; ++p) points.push_back(rng.Uniform(*total));

  for (uint64_t crash_op : points) {
    testing::TortureStats stats;
    Status s = testing::RunCrashPoint(config, crash_op, &stats);
    EXPECT_TRUE(s.ok()) << "seed=" << config.workload_seed
                        << " crash_op=" << crash_op << " (overlap): "
                        << s.ToString();
  }
}

// Multi-seed overlapped sweep (the in-suite slice of the nightly >= 5-seed
// sweep): every seed must complete at least one overlapped checkpoint when
// the crash point is beyond the workload, and seeded mid-workload crashes
// must recover to a consistent cut.
TEST(CrashTortureTest, OverlappedCheckpointFiveSeedSweep) {
  constexpr uint64_t kSeeds = 5;
  constexpr int kPointsPerSeed = 2;

  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    ScratchDir dir("overlap_seed_" + std::to_string(seed));
    testing::TortureConfig config;
    config.dir = dir.path();
    config.workload_seed = seed;
    config.overlapped_checkpoints = true;

    Result<uint64_t> total = testing::CountStorageOps(config);
    ASSERT_TRUE(total.ok())
        << "seed=" << seed << ": " << total.status().ToString();

    // No crash: the overlapped checkpoints themselves must succeed.
    {
      testing::TortureStats stats;
      Status s = testing::RunCrashPoint(config, *total * 2 + 1000, &stats);
      EXPECT_TRUE(s.ok()) << "seed=" << seed << ": " << s.ToString();
      EXPECT_FALSE(stats.crash_fired) << "seed=" << seed;
      EXPECT_GT(stats.checkpoints_completed, 0) << "seed=" << seed;
    }

    Random rng(seed * 0x9e3779b97f4a7c15ULL + 7);
    for (int p = 0; p < kPointsPerSeed; ++p) {
      const uint64_t crash_op = rng.Uniform(*total);
      testing::TortureStats stats;
      Status s = testing::RunCrashPoint(config, crash_op, &stats);
      EXPECT_TRUE(s.ok()) << "seed=" << seed << " crash_op=" << crash_op
                          << " (overlap): " << s.ToString();
    }
  }
}

// Crashing after the workload's last operation is the degenerate case: the
// crash never fires, every transaction is acknowledged, and recovery must
// reproduce all of them.
TEST(CrashTortureTest, CrashBeyondWorkloadIsFullRecovery) {
  ScratchDir dir("beyond");
  testing::TortureConfig config;
  config.dir = dir.path();
  config.workload_seed = 2;

  Result<uint64_t> total = testing::CountStorageOps(config);
  ASSERT_TRUE(total.ok()) << total.status().ToString();

  testing::TortureStats stats;
  Status s = testing::RunCrashPoint(config, *total + 1000, &stats);
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_FALSE(stats.crash_fired);
  EXPECT_GT(stats.txns_acked, 0);
  EXPECT_GT(stats.keys_verified, 0);
}

// Crashing on the very first storage operation leaves nothing durable —
// recovery of the empty directory must come up clean and empty.
TEST(CrashTortureTest, CrashOnFirstOpRecoversEmpty) {
  ScratchDir dir("first");
  testing::TortureConfig config;
  config.dir = dir.path();
  config.workload_seed = 2;

  testing::TortureStats stats;
  Status s = testing::RunCrashPoint(config, 0, &stats);
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_TRUE(stats.crash_fired);
  EXPECT_EQ(stats.txns_acked, 0);
}

}  // namespace
}  // namespace btrim
