// Unit tests for the GroupCommitter: policy behavior, batch formation
// under concurrency, sync accounting, and sticky IO-error poisoning.

#include <atomic>
#include <filesystem>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "wal/group_commit.h"
#include "wal/log.h"
#include "wal/log_record.h"

namespace btrim {
namespace {

std::string SerializedGroup(uint64_t txn_id, int records) {
  std::string group;
  for (int i = 0; i < records; ++i) {
    LogRecord rec;
    rec.type = LogRecordType::kImrsInsert;
    rec.txn_id = txn_id;
    rec.after = "payload-" + std::to_string(i);
    AppendLogRecord(&group, rec);
  }
  LogRecord commit;
  commit.type = LogRecordType::kImrsCommit;
  commit.txn_id = txn_id;
  AppendLogRecord(&group, commit);
  return group;
}

std::unique_ptr<Log> OpenFileLog(const std::string& path) {
  std::filesystem::remove(path);
  auto storage = FileLogStorage::Open(path);
  EXPECT_TRUE(storage.ok());
  return std::make_unique<Log>(std::move(*storage), /*sync_on_commit=*/true);
}

TEST(GroupCommitterTest, SyncPerCommitSyncsEveryGroup) {
  const std::string path = ::testing::TempDir() + "/gc_spc.log";
  std::unique_ptr<Log> log = OpenFileLog(path);
  DurabilityOptions opts;
  opts.policy = DurabilityPolicy::kSyncPerCommit;
  GroupCommitter committer(log.get(), opts);

  for (uint64_t t = 1; t <= 4; ++t) {
    std::string group = SerializedGroup(t, 2);
    ASSERT_TRUE(committer.CommitGroup(Slice(group), 3).ok());
  }
  EXPECT_EQ(log->GetStats().syncs, 4);
  GroupCommitStats stats = committer.GetStats();
  EXPECT_EQ(stats.groups_committed, 4);
  EXPECT_EQ(stats.batches, 4);
  EXPECT_DOUBLE_EQ(stats.GroupsPerBatch(), 1.0);
  EXPECT_EQ(stats.commit_latency.total, 4);
  std::filesystem::remove(path);
}

TEST(GroupCommitterTest, NoSyncAppendsWithoutSyncing) {
  auto log = std::make_unique<Log>(std::make_unique<MemLogStorage>(),
                                   /*sync_on_commit=*/false);
  DurabilityOptions opts;
  opts.policy = DurabilityPolicy::kNoSync;
  GroupCommitter committer(log.get(), opts);

  std::string group = SerializedGroup(1, 1);
  ASSERT_TRUE(committer.CommitGroup(Slice(group), 2).ok());
  EXPECT_EQ(log->GetStats().syncs, 0);
  EXPECT_EQ(committer.GetStats().groups_committed, 1);
  EXPECT_EQ(committer.GetStats().batches, 0);  // no batching machinery used
  int replayed = 0;
  ASSERT_TRUE(log->Replay([&](const LogRecord&) {
                   ++replayed;
                   return true;
                 })
                  .ok());
  EXPECT_EQ(replayed, 2);
}

TEST(GroupCommitterTest, LoneCommitterIsDurableAfterOneSync) {
  const std::string path = ::testing::TempDir() + "/gc_lone.log";
  std::unique_ptr<Log> log = OpenFileLog(path);
  DurabilityOptions opts;
  opts.policy = DurabilityPolicy::kGroupCommit;
  opts.max_batch_groups = 64;
  opts.max_group_latency_us = 100;  // short linger: no joiners will come
  GroupCommitter committer(log.get(), opts);

  std::string group = SerializedGroup(1, 3);
  ASSERT_TRUE(committer.CommitGroup(Slice(group), 4).ok());
  EXPECT_EQ(log->GetStats().syncs, 1);
  GroupCommitStats stats = committer.GetStats();
  EXPECT_EQ(stats.batches, 1);
  EXPECT_EQ(stats.max_batch_groups, 1);
  std::filesystem::remove(path);
}

// The deterministic batching test: a start barrier releases all committers
// at once, and the leader's linger window is far larger than the skew with
// which they arrive, so the batch must fill to all participants before any
// sync is issued.
TEST(GroupCommitterTest, ConcurrentCommittersShareOneSync) {
  const std::string path = ::testing::TempDir() + "/gc_batch.log";
  std::unique_ptr<Log> log = OpenFileLog(path);
  constexpr int kCommitters = 8;
  DurabilityOptions opts;
  opts.policy = DurabilityPolicy::kGroupCommit;
  opts.max_batch_groups = kCommitters;
  opts.max_group_latency_us = 2'000'000;  // generous: cut short by the fill
  GroupCommitter committer(log.get(), opts);

  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  threads.reserve(kCommitters);
  for (int t = 0; t < kCommitters; ++t) {
    threads.emplace_back([&, t] {
      const std::string group =
          SerializedGroup(static_cast<uint64_t>(t + 1), 2);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      if (!committer.CommitGroup(Slice(group), 3).ok()) failures.fetch_add(1);
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(log->GetStats().syncs, 1);
  GroupCommitStats stats = committer.GetStats();
  EXPECT_EQ(stats.groups_committed, kCommitters);
  EXPECT_EQ(stats.batches, 1);
  EXPECT_EQ(stats.max_batch_groups, kCommitters);
  EXPECT_DOUBLE_EQ(stats.GroupsPerBatch(), kCommitters);

  // Every group replays complete and contiguous (per-txn record runs).
  int commits_seen = 0;
  uint64_t current_txn = 0;
  int run = 0;
  ASSERT_TRUE(log->Replay([&](const LogRecord& rec) {
                   if (run == 0) {
                     current_txn = rec.txn_id;
                     run = 1;
                   } else {
                     EXPECT_EQ(rec.txn_id, current_txn);
                     ++run;
                   }
                   if (rec.type == LogRecordType::kImrsCommit) {
                     EXPECT_EQ(run, 3);
                     ++commits_seen;
                     run = 0;
                   }
                   return true;
                 })
                  .ok());
  EXPECT_EQ(commits_seen, kCommitters);
  std::filesystem::remove(path);
}

// Log storage whose Sync always fails after a configurable number of
// successes; Append always succeeds.
class FailingSyncStorage : public LogStorage {
 public:
  explicit FailingSyncStorage(int allowed_syncs)
      : allowed_syncs_(allowed_syncs) {}

  Status Append(Slice data) override { return mem_.Append(data); }
  Status Sync() override {
    if (allowed_syncs_-- > 0) return Status::OK();
    return Status::IOError("injected sync failure");
  }
  Status ReadAll(std::string* out) override { return mem_.ReadAll(out); }
  Status Truncate() override { return mem_.Truncate(); }
  int64_t Size() const override { return mem_.Size(); }

 private:
  MemLogStorage mem_;
  int allowed_syncs_;
};

TEST(GroupCommitterTest, SyncFailurePoisonsTheCommitter) {
  auto log = std::make_unique<Log>(std::make_unique<FailingSyncStorage>(0),
                                   /*sync_on_commit=*/true);
  DurabilityOptions opts;
  opts.policy = DurabilityPolicy::kGroupCommit;
  opts.max_group_latency_us = 0;
  GroupCommitter committer(log.get(), opts);

  std::string group = SerializedGroup(1, 1);
  EXPECT_TRUE(committer.CommitGroup(Slice(group), 2).IsIOError());
  // Sticky: later commits fail immediately, even though their own append
  // never ran (the log tail is no longer trustworthy).
  EXPECT_TRUE(committer.CommitGroup(Slice(group), 2).IsIOError());
  EXPECT_EQ(committer.GetStats().groups_committed, 0);
}

TEST(GroupCommitterTest, OptionsAreSanitized) {
  auto log = std::make_unique<Log>(std::make_unique<MemLogStorage>(),
                                   /*sync_on_commit=*/false);
  DurabilityOptions opts;
  opts.policy = DurabilityPolicy::kGroupCommit;
  opts.max_batch_groups = 0;      // clamped to 1
  opts.max_group_latency_us = -5;  // clamped to 0
  GroupCommitter committer(log.get(), opts);
  std::string group = SerializedGroup(1, 1);
  ASSERT_TRUE(committer.CommitGroup(Slice(group), 2).ok());
  EXPECT_EQ(committer.GetStats().batches, 1);
}

}  // namespace
}  // namespace btrim
