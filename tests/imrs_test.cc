// Unit tests for the In-Memory Row Store: versioned rows, the RID-map,
// snapshot visibility, and garbage collection.

#include <vector>

#include <gtest/gtest.h>

#include "imrs/gc.h"
#include "imrs/rid_map.h"
#include "imrs/store.h"

namespace btrim {
namespace {

constexpr Rid kRid{1, 0, 0};

class ImrsStoreTest : public ::testing::Test {
 protected:
  ImrsStoreTest() : alloc_(8 << 20), store_(&alloc_, &map_) {}

  /// Commits the head version of `row` at timestamp `cts`.
  static void Stamp(ImrsRow* row, uint64_t cts) {
    row->latest.load()->commit_ts.store(cts);
  }

  FragmentAllocator alloc_;
  RidMap map_;
  ImrsStore store_;
};

TEST_F(ImrsStoreTest, CreateRowRegistersInRidMap) {
  int64_t bytes = 0;
  Result<ImrsRow*> row =
      store_.CreateRow(kRid, 1, 0, RowSource::kInserted, "data", 10, 5, &bytes);
  ASSERT_TRUE(row.ok());
  EXPECT_GT(bytes, 0);
  EXPECT_EQ(map_.Lookup(kRid), *row);
  EXPECT_EQ((*row)->rid, kRid);
  EXPECT_EQ((*row)->source, RowSource::kInserted);
  EXPECT_EQ((*row)->last_access_ts.load(), 5u);
}

TEST_F(ImrsStoreTest, UncommittedVersionVisibleOnlyToOwner) {
  Result<ImrsRow*> row =
      store_.CreateRow(kRid, 1, 0, RowSource::kInserted, "v1", /*txn=*/10, 0);
  ASSERT_TRUE(row.ok());
  // Owner sees its own write; others see nothing.
  EXPECT_NE(ImrsStore::VisibleVersion(*row, 100, 10), nullptr);
  EXPECT_EQ(ImrsStore::VisibleVersion(*row, 100, 11), nullptr);
  EXPECT_EQ(ImrsStore::LatestCommitted(*row), nullptr);
}

TEST_F(ImrsStoreTest, SnapshotVisibilityByTimestamp) {
  Result<ImrsRow*> row =
      store_.CreateRow(kRid, 1, 0, RowSource::kInserted, "v1", 10, 0);
  ASSERT_TRUE(row.ok());
  Stamp(*row, 5);

  // Readers at or after cts 5 see it; earlier snapshots don't.
  EXPECT_NE(ImrsStore::VisibleVersion(*row, 5, 99), nullptr);
  EXPECT_NE(ImrsStore::VisibleVersion(*row, 6, 99), nullptr);
  EXPECT_EQ(ImrsStore::VisibleVersion(*row, 4, 99), nullptr);
}

TEST_F(ImrsStoreTest, VersionChainServesEachSnapshotItsVersion) {
  Result<ImrsRow*> row =
      store_.CreateRow(kRid, 1, 0, RowSource::kInserted, "v1", 10, 0);
  ASSERT_TRUE(row.ok());
  Stamp(*row, 5);
  ASSERT_TRUE(store_.AddVersion(*row, "v2", false, 11).ok());
  Stamp(*row, 8);
  ASSERT_TRUE(store_.AddVersion(*row, "v3", false, 12).ok());
  Stamp(*row, 12);

  auto payload_at = [&](uint64_t snapshot) {
    RowVersion* v = ImrsStore::VisibleVersion(*row, snapshot, 99);
    return v == nullptr ? std::string("<none>") : v->payload().ToString();
  };
  EXPECT_EQ(payload_at(4), "<none>");
  EXPECT_EQ(payload_at(5), "v1");
  EXPECT_EQ(payload_at(7), "v1");
  EXPECT_EQ(payload_at(8), "v2");
  EXPECT_EQ(payload_at(11), "v2");
  EXPECT_EQ(payload_at(12), "v3");
  EXPECT_EQ(payload_at(100), "v3");
}

TEST_F(ImrsStoreTest, DeleteMarkerVisibility) {
  Result<ImrsRow*> row =
      store_.CreateRow(kRid, 1, 0, RowSource::kInserted, "v1", 10, 0);
  ASSERT_TRUE(row.ok());
  Stamp(*row, 5);
  ASSERT_TRUE(store_.AddVersion(*row, "v1", /*is_delete=*/true, 11).ok());
  Stamp(*row, 9);

  RowVersion* before = ImrsStore::VisibleVersion(*row, 8, 99);
  ASSERT_NE(before, nullptr);
  EXPECT_FALSE(before->is_delete);
  RowVersion* after = ImrsStore::VisibleVersion(*row, 9, 99);
  ASSERT_NE(after, nullptr);
  EXPECT_TRUE(after->is_delete);
  // The marker retains the payload (purge needs it for index keys).
  EXPECT_EQ(after->payload().ToString(), "v1");
}

TEST_F(ImrsStoreTest, LatestCommittedSkipsUncommittedHead) {
  Result<ImrsRow*> row =
      store_.CreateRow(kRid, 1, 0, RowSource::kInserted, "v1", 10, 0);
  ASSERT_TRUE(row.ok());
  Stamp(*row, 5);
  ASSERT_TRUE(store_.AddVersion(*row, "v2-uncommitted", false, 22).ok());
  RowVersion* committed = ImrsStore::LatestCommitted(*row);
  ASSERT_NE(committed, nullptr);
  EXPECT_EQ(committed->payload().ToString(), "v1");
}

TEST_F(ImrsStoreTest, PopUncommittedRestoresChain) {
  Result<ImrsRow*> row =
      store_.CreateRow(kRid, 1, 0, RowSource::kInserted, "v1", 10, 0);
  ASSERT_TRUE(row.ok());
  Stamp(*row, 5);
  ASSERT_TRUE(store_.AddVersion(*row, "v2", false, 22).ok());

  // A different transaction can't pop it; the owner can.
  EXPECT_EQ(store_.PopUncommitted(*row, 23), nullptr);
  RowVersion* popped = store_.PopUncommitted(*row, 22);
  ASSERT_NE(popped, nullptr);
  EXPECT_EQ(popped->payload().ToString(), "v2");
  store_.FreeVersion(popped);
  EXPECT_EQ(ImrsStore::LatestCommitted(*row)->payload().ToString(), "v1");
  // Nothing left to pop.
  EXPECT_EQ(store_.PopUncommitted(*row, 22), nullptr);
}

TEST_F(ImrsStoreTest, NoSpaceWhenCacheFull) {
  FragmentAllocator tiny(4096);
  ImrsStore store(&tiny, &map_);
  std::vector<ImrsRow*> rows;
  uint32_t n = 0;
  while (true) {
    Result<ImrsRow*> row = store.CreateRow(Rid{1, 0, static_cast<uint16_t>(n)},
                                           1, 0, RowSource::kInserted,
                                           std::string(200, 'x'), 1, 0);
    if (!row.ok()) {
      EXPECT_TRUE(row.status().IsNoSpace());
      break;
    }
    rows.push_back(*row);
    ++n;
  }
  EXPECT_GT(rows.size(), 0u);
}

TEST_F(ImrsStoreTest, RowFootprintCountsChain) {
  Result<ImrsRow*> row =
      store_.CreateRow(kRid, 1, 0, RowSource::kInserted, "v1", 10, 0);
  ASSERT_TRUE(row.ok());
  const int64_t single = ImrsStore::RowFootprint(*row);
  ASSERT_TRUE(store_.AddVersion(*row, "v2", false, 11).ok());
  EXPECT_GT(ImrsStore::RowFootprint(*row), single);
}

// --- RidMap -----------------------------------------------------------------------

TEST(RidMapTest, InsertLookupErase) {
  RidMap map;
  ImrsRow row;
  map.Insert(kRid, &row);
  EXPECT_EQ(map.Lookup(kRid), &row);
  EXPECT_EQ(map.Size(), 1);
  EXPECT_TRUE(map.Erase(kRid));
  EXPECT_FALSE(map.Erase(kRid));
  EXPECT_EQ(map.Lookup(kRid), nullptr);
}

TEST(RidMapTest, ManyEntriesAcrossStripes) {
  RidMap map(16);
  std::vector<ImrsRow> rows(1000);
  for (uint32_t i = 0; i < 1000; ++i) {
    map.Insert(Rid{1, i, 0}, &rows[i]);
  }
  EXPECT_EQ(map.Size(), 1000);
  for (uint32_t i = 0; i < 1000; i += 13) {
    EXPECT_EQ(map.Lookup(Rid{1, i, 0}), &rows[i]);
  }
  int seen = 0;
  map.ForEach([&](Rid, ImrsRow*) { ++seen; });
  EXPECT_EQ(seen, 1000);
}

// --- GC ----------------------------------------------------------------------------

class GcTest : public ::testing::Test {
 protected:
  GcTest() : alloc_(8 << 20), store_(&alloc_, &map_) {
    GcHooks hooks;
    hooks.enqueue_to_ilm_queue = [this](ImrsRow* row) {
      row->SetFlag(kRowInQueue);
      ++enqueued_;
    };
    hooks.unlink_from_ilm_queue = [this](ImrsRow* row) {
      row->ClearFlag(kRowInQueue);
      ++unlinked_;
    };
    hooks.purge_page_store_home = [this](ImrsRow*) {
      ++purge_calls_;
      return purge_allowed_;
    };
    hooks.on_freed = [this](uint32_t, uint32_t, int64_t bytes, int64_t rows) {
      freed_bytes_ += bytes;
      freed_rows_ += rows;
    };
    gc_ = std::make_unique<ImrsGc>(&store_, std::move(hooks));
  }

  ImrsRow* MakeCommittedRow(uint16_t slot, uint64_t cts) {
    Result<ImrsRow*> row = store_.CreateRow(Rid{1, 0, slot}, 1, 0,
                                            RowSource::kInserted, "v1", 1, cts);
    EXPECT_TRUE(row.ok());
    (*row)->latest.load()->commit_ts.store(cts);
    return *row;
  }

  void AddCommittedVersion(ImrsRow* row, const std::string& data, uint64_t cts,
                           bool is_delete = false) {
    Result<RowVersion*> v = store_.AddVersion(row, data, is_delete, 1);
    ASSERT_TRUE(v.ok());
    (*v)->commit_ts.store(cts);
  }

  FragmentAllocator alloc_;
  RidMap map_;
  ImrsStore store_;
  std::unique_ptr<ImrsGc> gc_;
  int enqueued_ = 0;
  int unlinked_ = 0;
  int purge_calls_ = 0;
  bool purge_allowed_ = true;
  int64_t freed_bytes_ = 0;
  int64_t freed_rows_ = 0;
};

TEST_F(GcTest, NewRowIsEnqueuedToIlmQueue) {
  ImrsRow* row = MakeCommittedRow(0, 1);
  gc_->EnqueueCommitted(row, /*newly_created=*/true);
  gc_->RunOnce(/*oldest_snapshot=*/10, /*now=*/10);
  EXPECT_EQ(enqueued_, 1);
  EXPECT_TRUE(row->HasFlag(kRowInQueue));
}

TEST_F(GcTest, OldVersionsTrimmedPastHorizon) {
  ImrsRow* row = MakeCommittedRow(0, 1);
  AddCommittedVersion(row, "v2", 5);
  AddCommittedVersion(row, "v3", 9);
  gc_->EnqueueCommitted(row, false);

  // Horizon at 9: v3 is the pivot; v2 and v1 are unreachable.
  gc_->RunOnce(9, 10);
  GcStats stats = gc_->GetStats();
  EXPECT_EQ(stats.versions_freed, 2);
  RowVersion* head = row->latest.load();
  EXPECT_EQ(head->payload().ToString(), "v3");
  EXPECT_EQ(head->older.load(), nullptr);
  EXPECT_GT(freed_bytes_, 0);
}

TEST_F(GcTest, VersionsProtectedByOldSnapshotsKept) {
  ImrsRow* row = MakeCommittedRow(0, 1);
  AddCommittedVersion(row, "v2", 5);
  gc_->EnqueueCommitted(row, false);

  // A reader at snapshot 3 still needs v1.
  gc_->RunOnce(3, 10);
  EXPECT_EQ(gc_->GetStats().versions_freed, 0);
  EXPECT_NE(row->latest.load()->older.load(), nullptr);

  // Once the horizon passes 5, v1 goes (the row was re-queued internally).
  gc_->RunOnce(5, 11);
  EXPECT_EQ(gc_->GetStats().versions_freed, 1);
}

TEST_F(GcTest, DeadRowPurgedAfterHorizon) {
  ImrsRow* row = MakeCommittedRow(0, 1);
  row->SetFlag(kRowInQueue);  // simulate queue membership
  AddCommittedVersion(row, "v1", 5, /*is_delete=*/true);
  gc_->EnqueueCommitted(row, false);

  gc_->RunOnce(/*oldest_snapshot=*/6, /*now=*/7);
  EXPECT_EQ(purge_calls_, 1);
  EXPECT_EQ(unlinked_, 1);
  EXPECT_EQ(freed_rows_, 1);
  EXPECT_EQ(map_.Lookup(Rid{1, 0, 0}), nullptr);
  EXPECT_TRUE(row->HasFlag(kRowPurged));

  // Memory is deferred until the horizon passes the purge time.
  EXPECT_GT(gc_->GetStats().deferred_pending, 0);
  const int64_t in_use_before = alloc_.InUseBytes();
  gc_->RunOnce(/*oldest_snapshot=*/8, /*now=*/9);
  EXPECT_LT(alloc_.InUseBytes(), in_use_before);
  EXPECT_EQ(gc_->GetStats().deferred_pending, 0);
}

TEST_F(GcTest, PurgeRetriesWhenPageStoreBusy) {
  ImrsRow* row = MakeCommittedRow(0, 1);
  AddCommittedVersion(row, "v1", 5, /*is_delete=*/true);
  gc_->EnqueueCommitted(row, false);

  purge_allowed_ = false;
  gc_->RunOnce(6, 7);
  EXPECT_EQ(purge_calls_, 1);
  EXPECT_FALSE(row->HasFlag(kRowPurged));
  EXPECT_NE(map_.Lookup(Rid{1, 0, 0}), nullptr);

  purge_allowed_ = true;
  gc_->RunOnce(6, 8);
  EXPECT_EQ(purge_calls_, 2);
  EXPECT_TRUE(row->HasFlag(kRowPurged));
}

TEST_F(GcTest, LiveRowNotPurged) {
  ImrsRow* row = MakeCommittedRow(0, 1);
  gc_->EnqueueCommitted(row, false);
  gc_->RunOnce(100, 100);
  EXPECT_EQ(purge_calls_, 0);
  EXPECT_NE(map_.Lookup(Rid{1, 0, 0}), nullptr);
}

TEST_F(GcTest, PackedRowsAreSkipped) {
  ImrsRow* row = MakeCommittedRow(0, 1);
  row->SetFlag(kRowPacked);
  gc_->EnqueueCommitted(row, true);
  gc_->RunOnce(100, 100);
  EXPECT_EQ(enqueued_, 0);
  EXPECT_EQ(gc_->GetStats().versions_freed, 0);
}

TEST_F(GcTest, DeferFreeWaitsForHorizon) {
  void* frag = alloc_.Allocate(128);
  ASSERT_NE(frag, nullptr);
  const int64_t in_use = alloc_.InUseBytes();
  gc_->DeferFree(frag, /*not_before_ts=*/10);
  gc_->RunOnce(/*oldest_snapshot=*/10, 10);  // 10 < 10 is false -> kept
  EXPECT_EQ(alloc_.InUseBytes(), in_use);
  gc_->RunOnce(/*oldest_snapshot=*/11, 11);
  EXPECT_LT(alloc_.InUseBytes(), in_use);
}

TEST_F(GcTest, MaxItemsBoundsWork) {
  for (uint16_t i = 0; i < 10; ++i) {
    gc_->EnqueueCommitted(MakeCommittedRow(i, 1), true);
  }
  EXPECT_EQ(gc_->RunOnce(100, 100, /*max_items=*/3), 3);
  EXPECT_EQ(gc_->GetStats().work_pending, 7);
  EXPECT_EQ(gc_->RunOnce(100, 100), 7);
}

}  // namespace
}  // namespace btrim
