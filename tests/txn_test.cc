// Unit tests for the lock manager and transaction manager.

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "txn/lock_manager.h"
#include "txn/transaction.h"

namespace btrim {
namespace {

// --- LockManager ------------------------------------------------------------

class LockManagerTest : public ::testing::Test {
 protected:
  LockManager lm_;
};

TEST_F(LockManagerTest, SharedLocksAreCompatible) {
  ASSERT_TRUE(lm_.Acquire(1, 100, LockMode::kShared, 10).ok());
  ASSERT_TRUE(lm_.Acquire(2, 100, LockMode::kShared, 10).ok());
  EXPECT_TRUE(lm_.Holds(1, 100, LockMode::kShared));
  EXPECT_TRUE(lm_.Holds(2, 100, LockMode::kShared));
  lm_.Release(1, 100);
  lm_.Release(2, 100);
}

TEST_F(LockManagerTest, ExclusiveExcludesOthers) {
  ASSERT_TRUE(lm_.Acquire(1, 100, LockMode::kExclusive, 10).ok());
  EXPECT_TRUE(lm_.TryAcquire(2, 100, LockMode::kShared).IsBusy());
  EXPECT_TRUE(lm_.TryAcquire(2, 100, LockMode::kExclusive).IsBusy());
  lm_.Release(1, 100);
  EXPECT_TRUE(lm_.TryAcquire(2, 100, LockMode::kExclusive).ok());
  lm_.Release(2, 100);
}

TEST_F(LockManagerTest, SharedBlocksExclusive) {
  ASSERT_TRUE(lm_.Acquire(1, 7, LockMode::kShared, 10).ok());
  EXPECT_TRUE(lm_.TryAcquire(2, 7, LockMode::kExclusive).IsBusy());
  lm_.Release(1, 7);
}

TEST_F(LockManagerTest, ReentrantAcquisition) {
  ASSERT_TRUE(lm_.Acquire(1, 5, LockMode::kExclusive, 10).ok());
  ASSERT_TRUE(lm_.Acquire(1, 5, LockMode::kExclusive, 10).ok());
  ASSERT_TRUE(lm_.Acquire(1, 5, LockMode::kShared, 10).ok());
  lm_.Release(1, 5);
  EXPECT_FALSE(lm_.Holds(1, 5, LockMode::kShared));
}

TEST_F(LockManagerTest, UpgradeWhenSoleHolder) {
  ASSERT_TRUE(lm_.Acquire(1, 5, LockMode::kShared, 10).ok());
  ASSERT_TRUE(lm_.Acquire(1, 5, LockMode::kExclusive, 10).ok());
  EXPECT_TRUE(lm_.Holds(1, 5, LockMode::kExclusive));
  lm_.Release(1, 5);
}

TEST_F(LockManagerTest, UpgradeBlockedByOtherReader) {
  ASSERT_TRUE(lm_.Acquire(1, 5, LockMode::kShared, 10).ok());
  ASSERT_TRUE(lm_.Acquire(2, 5, LockMode::kShared, 10).ok());
  EXPECT_TRUE(lm_.TryAcquire(1, 5, LockMode::kExclusive).IsBusy());
  lm_.Release(2, 5);
  EXPECT_TRUE(lm_.TryAcquire(1, 5, LockMode::kExclusive).ok());
  lm_.Release(1, 5);
}

TEST_F(LockManagerTest, TimeoutReturnsAborted) {
  ASSERT_TRUE(lm_.Acquire(1, 9, LockMode::kExclusive, 10).ok());
  Status s = lm_.Acquire(2, 9, LockMode::kExclusive, 50);
  EXPECT_TRUE(s.IsAborted());
  EXPECT_GE(lm_.GetStats().timeouts, 1);
  lm_.Release(1, 9);
}

TEST_F(LockManagerTest, BlockedAcquireWakesOnRelease) {
  ASSERT_TRUE(lm_.Acquire(1, 3, LockMode::kExclusive, 10).ok());
  std::thread waiter([&] {
    Status s = lm_.Acquire(2, 3, LockMode::kExclusive, 5000);
    EXPECT_TRUE(s.ok());
    lm_.Release(2, 3);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  lm_.Release(1, 3);
  waiter.join();
  EXPECT_GE(lm_.GetStats().waits, 1);
}

TEST_F(LockManagerTest, PendingUpgradeBlocksNewSharedGrants) {
  // Regression: a shared->exclusive upgrader must not starve behind a
  // steady stream of new shared grants. Once txn 2's blocking upgrade is
  // waiting, a *new* shared request from txn 3 is refused until the
  // upgrade resolves.
  ASSERT_TRUE(lm_.Acquire(1, 7, LockMode::kShared, 10).ok());
  ASSERT_TRUE(lm_.Acquire(2, 7, LockMode::kShared, 10).ok());
  const int64_t waits_before = lm_.GetStats().waits;
  std::thread upgrader([&] {
    Status s = lm_.Acquire(2, 7, LockMode::kExclusive, 5000);
    EXPECT_TRUE(s.ok());
  });
  // Wait until the upgrade is registered (it counts as a blocked wait).
  while (lm_.GetStats().waits == waits_before) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(lm_.TryAcquire(3, 7, LockMode::kShared).IsBusy());
  EXPECT_TRUE(lm_.Acquire(3, 7, LockMode::kShared, 50).IsAborted());
  lm_.Release(1, 7);  // last other reader drains; upgrade grants
  upgrader.join();
  EXPECT_TRUE(lm_.Holds(2, 7, LockMode::kExclusive));
  // Upgrade resolved: shared requests flow again once 2 releases.
  lm_.Release(2, 7);
  EXPECT_TRUE(lm_.Acquire(3, 7, LockMode::kShared, 10).ok());
  lm_.Release(3, 7);
}

TEST_F(LockManagerTest, DeniedTryUpgradeDoesNotBlockReaders) {
  // TryAcquire never registers upgrade intent: a Pack-style conditional
  // upgrade that loses must leave no pending claim behind.
  ASSERT_TRUE(lm_.Acquire(1, 8, LockMode::kShared, 10).ok());
  ASSERT_TRUE(lm_.Acquire(2, 8, LockMode::kShared, 10).ok());
  EXPECT_TRUE(lm_.TryAcquire(1, 8, LockMode::kExclusive).IsBusy());
  EXPECT_TRUE(lm_.Acquire(3, 8, LockMode::kShared, 10).ok());
  lm_.Release(1, 8);
  lm_.Release(2, 8);
  lm_.Release(3, 8);
}

TEST_F(LockManagerTest, FastPathGrantsAreCounted) {
  // Uncontended exclusive locks take the atomic fast path.
  ASSERT_TRUE(lm_.Acquire(1, 100, LockMode::kExclusive, 10).ok());
  lm_.Release(1, 100);
  ASSERT_TRUE(lm_.TryAcquire(2, 100, LockMode::kExclusive).ok());
  lm_.Release(2, 100);
  EXPECT_GE(lm_.GetStats().fast_grants, 2);
}

TEST_F(LockManagerTest, DistinctLocksDontInterfere) {
  ASSERT_TRUE(lm_.Acquire(1, 1, LockMode::kExclusive, 10).ok());
  ASSERT_TRUE(lm_.Acquire(2, 2, LockMode::kExclusive, 10).ok());
  lm_.Release(1, 1);
  lm_.Release(2, 2);
}

TEST_F(LockManagerTest, ConcurrentExclusiveCounting) {
  // N threads increment a counter under the same lock; mutual exclusion
  // implies an exact final count.
  int counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const uint64_t txn = static_cast<uint64_t>(t) + 1;
      for (int i = 0; i < kIters; ++i) {
        ASSERT_TRUE(lm_.Acquire(txn, 77, LockMode::kExclusive, 10000).ok());
        ++counter;
        lm_.Release(txn, 77);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, kThreads * kIters);
}

// --- TransactionManager --------------------------------------------------------

class TransactionManagerTest : public ::testing::Test {
 protected:
  TransactionManagerTest() : tm_(&lm_) {}
  LockManager lm_;
  TransactionManager tm_;
};

TEST_F(TransactionManagerTest, CommitAdvancesClockAndStampsTxn) {
  auto txn = tm_.Begin();
  EXPECT_EQ(txn->begin_ts(), 0u);
  EXPECT_EQ(txn->state(), TxnState::kActive);
  ASSERT_TRUE(tm_.Commit(txn.get()).ok());
  EXPECT_EQ(txn->state(), TxnState::kCommitted);
  EXPECT_EQ(txn->commit_ts(), 1u);
  EXPECT_EQ(tm_.CurrentTimestamp(), 1u);

  auto txn2 = tm_.Begin();
  EXPECT_EQ(txn2->begin_ts(), 1u);
  ASSERT_TRUE(tm_.Commit(txn2.get()).ok());
  EXPECT_EQ(txn2->commit_ts(), 2u);
}

TEST_F(TransactionManagerTest, SeesRespectsSnapshot) {
  auto t1 = tm_.Begin();
  ASSERT_TRUE(tm_.Commit(t1.get()).ok());  // cts 1
  auto t2 = tm_.Begin();                   // snapshot 1
  EXPECT_TRUE(t2->Sees(1));
  EXPECT_FALSE(t2->Sees(2));
  EXPECT_FALSE(t2->Sees(0));  // 0 = uncommitted
  ASSERT_TRUE(tm_.Abort(t2.get()).ok());
}

TEST_F(TransactionManagerTest, CommitActionsReceiveCommitTs) {
  auto txn = tm_.Begin();
  uint64_t seen_cts = 0;
  txn->AddCommitAction([&](uint64_t cts) { seen_cts = cts; });
  ASSERT_TRUE(tm_.Commit(txn.get()).ok());
  EXPECT_EQ(seen_cts, txn->commit_ts());
}

TEST_F(TransactionManagerTest, UndoActionsRunInReverseOnAbort) {
  auto txn = tm_.Begin();
  std::vector<int> order;
  txn->AddUndo([&] { order.push_back(1); });
  txn->AddUndo([&] { order.push_back(2); });
  txn->AddUndo([&] { order.push_back(3); });
  ASSERT_TRUE(tm_.Abort(txn.get()).ok());
  EXPECT_EQ(order, (std::vector<int>{3, 2, 1}));
  EXPECT_EQ(txn->state(), TxnState::kAborted);
}

TEST_F(TransactionManagerTest, UndoActionsSkippedOnCommit) {
  auto txn = tm_.Begin();
  bool undone = false;
  txn->AddUndo([&] { undone = true; });
  ASSERT_TRUE(tm_.Commit(txn.get()).ok());
  EXPECT_FALSE(undone);
}

TEST_F(TransactionManagerTest, CommitActionsSkippedOnAbort) {
  auto txn = tm_.Begin();
  bool committed_action = false;
  txn->AddCommitAction([&](uint64_t) { committed_action = true; });
  ASSERT_TRUE(tm_.Abort(txn.get()).ok());
  EXPECT_FALSE(committed_action);
}

TEST_F(TransactionManagerTest, DurabilityHookFailureAborts) {
  auto txn = tm_.Begin();
  bool undone = false;
  txn->AddUndo([&] { undone = true; });
  Status s = tm_.Commit(txn.get(), [](Transaction*, uint64_t) {
    return Status::IOError("log device gone");
  });
  EXPECT_TRUE(s.IsIOError());
  EXPECT_EQ(txn->state(), TxnState::kAborted);
  EXPECT_TRUE(undone);
}

TEST_F(TransactionManagerTest, DurabilityHookSeesCommitTs) {
  auto txn = tm_.Begin();
  uint64_t hook_cts = 0;
  ASSERT_TRUE(tm_.Commit(txn.get(),
                         [&](Transaction* t, uint64_t cts) {
                           hook_cts = cts;
                           EXPECT_EQ(t->commit_ts(), cts);
                           return Status::OK();
                         })
                  .ok());
  EXPECT_EQ(hook_cts, 1u);
}

TEST_F(TransactionManagerTest, LocksReleasedAtCommitAndAbort) {
  auto t1 = tm_.Begin();
  ASSERT_TRUE(t1->AcquireLock(55, LockMode::kExclusive, 10).ok());
  EXPECT_TRUE(lm_.TryAcquire(9999, 55, LockMode::kShared).IsBusy());
  ASSERT_TRUE(tm_.Commit(t1.get()).ok());
  EXPECT_TRUE(lm_.TryAcquire(9999, 55, LockMode::kShared).ok());
  lm_.Release(9999, 55);

  auto t2 = tm_.Begin();
  ASSERT_TRUE(t2->AcquireLock(56, LockMode::kExclusive, 10).ok());
  ASSERT_TRUE(tm_.Abort(t2.get()).ok());
  EXPECT_TRUE(lm_.TryAcquire(9999, 56, LockMode::kShared).ok());
  lm_.Release(9999, 56);
}

TEST_F(TransactionManagerTest, DoubleFinishRejected) {
  auto txn = tm_.Begin();
  ASSERT_TRUE(tm_.Commit(txn.get()).ok());
  EXPECT_TRUE(tm_.Commit(txn.get()).IsInvalidArgument());
  EXPECT_TRUE(tm_.Abort(txn.get()).IsInvalidArgument());
}

TEST_F(TransactionManagerTest, OldestActiveSnapshotTracksActiveSet) {
  // No active transactions: horizon is "now".
  EXPECT_EQ(tm_.OldestActiveSnapshot(), 0u);
  auto t1 = tm_.Begin();  // snapshot 0
  auto bump = tm_.Begin();
  ASSERT_TRUE(tm_.Commit(bump.get()).ok());  // clock -> 1
  auto t2 = tm_.Begin();                     // snapshot 1
  EXPECT_EQ(tm_.OldestActiveSnapshot(), 0u);
  ASSERT_TRUE(tm_.Commit(t1.get()).ok());
  EXPECT_EQ(tm_.OldestActiveSnapshot(), 1u);
  ASSERT_TRUE(tm_.Commit(t2.get()).ok());
  EXPECT_EQ(tm_.OldestActiveSnapshot(), tm_.CurrentTimestamp());
}

TEST_F(TransactionManagerTest, StatsCountOutcomes) {
  auto a = tm_.Begin();
  auto b = tm_.Begin();
  auto c = tm_.Begin();
  ASSERT_TRUE(tm_.Commit(a.get()).ok());
  ASSERT_TRUE(tm_.Abort(b.get()).ok());
  TransactionManagerStats s = tm_.GetStats();
  EXPECT_EQ(s.begun, 3);
  EXPECT_EQ(s.committed, 1);
  EXPECT_EQ(s.aborted, 1);
  EXPECT_EQ(s.active, 1);
  ASSERT_TRUE(tm_.Commit(c.get()).ok());
}

TEST_F(TransactionManagerTest, ConcurrentCommitsGetUniqueTimestamps) {
  constexpr int kThreads = 4;
  constexpr int kTxns = 2000;
  std::vector<std::vector<uint64_t>> cts(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kTxns; ++i) {
        auto txn = tm_.Begin();
        ASSERT_TRUE(tm_.Commit(txn.get()).ok());
        cts[t].push_back(txn->commit_ts());
      }
    });
  }
  for (auto& t : threads) t.join();
  std::vector<uint64_t> all;
  for (auto& v : cts) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  EXPECT_TRUE(std::adjacent_find(all.begin(), all.end()) == all.end());
  EXPECT_EQ(all.size(), static_cast<size_t>(kThreads * kTxns));
}

}  // namespace
}  // namespace btrim
