// Crash-recovery tests: the dual-log redo-undo / redo-only protocol of
// paper Sec. II, exercised with file-backed devices and logs. "Crash" =
// destroy the Database object without checkpointing, reopen over the same
// files, re-create the catalog, and Recover().

#include <atomic>
#include <filesystem>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/database.h"

namespace btrim {
namespace {

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/btrim_recovery_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    db_.reset();
    std::filesystem::remove_all(dir_);
  }

  DatabaseOptions DefaultOptions() {
    DatabaseOptions options;
    options.in_memory = false;
    options.data_dir = dir_;
    options.buffer_cache_frames = 256;
    options.imrs_cache_bytes = 8 << 20;
    options.lock_timeout_ms = 100;
    return options;
  }

  /// Opens (or reopens) the database over the same directory and recreates
  /// the catalog. `recover` triggers log replay.
  void Open(bool recover, DatabaseOptions options = {}) {
    db_.reset();  // close the previous instance first (releases fds)
    if (options.data_dir.empty()) options = DefaultOptions();
    Result<std::unique_ptr<Database>> opened = Database::Open(options);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    db_ = std::move(*opened);

    TableOptions topt;
    topt.name = "kv";
    topt.schema = Schema({
        Column::Int64("id"),
        Column::Int64("group_id"),
        Column::String("value", 64),
    });
    topt.primary_key = {0};
    topt.secondary_indexes.push_back(IndexDef{"by_group", {1, 0}, false});
    Result<Table*> created = db_->CreateTable(topt);
    ASSERT_TRUE(created.ok());
    table_ = *created;

    if (recover) {
      ASSERT_TRUE(db_->Recover().ok());
    }
  }

  std::string Key(int64_t id) { return table_->pk_encoder().KeyForInts({id}); }

  std::string Record(int64_t id, int64_t group, const std::string& value) {
    RecordBuilder b(&table_->schema());
    b.AddInt64(id).AddInt64(group).AddString(value);
    return b.Finish().ToString();
  }

  Status InsertRow(int64_t id, const std::string& value) {
    auto txn = db_->Begin();
    Status s = db_->Insert(txn.get(), table_, Record(id, 1, value));
    if (!s.ok()) {
      Status a = db_->Abort(txn.get());
      (void)a;
      return s;
    }
    return db_->Commit(txn.get());
  }

  Result<std::string> ReadValue(int64_t id) {
    auto txn = db_->Begin();
    std::string row;
    Status s = db_->SelectByKey(txn.get(), table_, Key(id), &row);
    Status c = db_->Commit(txn.get());
    (void)c;
    if (!s.ok()) return s;
    RecordView v(&table_->schema(), Slice(row));
    return v.GetString(2).ToString();
  }

  Status UpdateValue(int64_t id, const std::string& value) {
    auto txn = db_->Begin();
    Status s = db_->Update(txn.get(), table_, Key(id),
                           [&](std::string* payload) {
                             RecordEditor e(&table_->schema(),
                                            Slice(*payload));
                             e.SetString(2, value);
                             *payload = e.Encode();
                           });
    if (!s.ok()) {
      Status a = db_->Abort(txn.get());
      (void)a;
      return s;
    }
    return db_->Commit(txn.get());
  }

  std::string dir_;
  std::unique_ptr<Database> db_;
  Table* table_ = nullptr;
};

TEST_F(RecoveryTest, CommittedImrsInsertsSurviveCrash) {
  Open(false);
  for (int64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(InsertRow(i, "imrs-" + std::to_string(i)).ok());
  }
  // Crash without any flush: the IMRS contents exist only in sysimrslogs.
  Open(true);
  for (int64_t i = 0; i < 50; ++i) {
    Result<std::string> v = ReadValue(i);
    ASSERT_TRUE(v.ok()) << "row " << i;
    EXPECT_EQ(*v, "imrs-" + std::to_string(i));
  }
  // Recovered rows are IMRS-resident again (redo-only replay).
  EXPECT_EQ(db_->rid_map()->Size(), 50);
}

TEST_F(RecoveryTest, CommittedPageStoreInsertsSurviveCrash) {
  Open(false);
  db_->ilm()->SetForcePageStore(true);
  for (int64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(InsertRow(i, "ps-" + std::to_string(i)).ok());
  }
  Open(true);
  EXPECT_EQ(db_->rid_map()->Size(), 0);  // page-store rows stay there
  for (int64_t i = 0; i < 50; ++i) {
    Result<std::string> v = ReadValue(i);
    ASSERT_TRUE(v.ok()) << "row " << i;
    EXPECT_EQ(*v, "ps-" + std::to_string(i));
  }
  // (Point reads above may have *cached* rows back into the IMRS — that is
  // the select-caching admission path working as designed.)
}

TEST_F(RecoveryTest, UpdatesRecoverToLatestCommittedVersion) {
  Open(false);
  ASSERT_TRUE(InsertRow(1, "v1").ok());
  ASSERT_TRUE(UpdateValue(1, "v2").ok());
  ASSERT_TRUE(UpdateValue(1, "v3").ok());
  Open(true);
  EXPECT_EQ(*ReadValue(1), "v3");
}

TEST_F(RecoveryTest, CommittedDeleteStaysDeleted) {
  Open(false);
  ASSERT_TRUE(InsertRow(1, "doomed").ok());
  ASSERT_TRUE(InsertRow(2, "keeper").ok());
  {
    auto txn = db_->Begin();
    ASSERT_TRUE(db_->Delete(txn.get(), table_, Key(1)).ok());
    ASSERT_TRUE(db_->Commit(txn.get()).ok());
  }
  Open(true);
  EXPECT_TRUE(ReadValue(1).status().IsNotFound());
  EXPECT_EQ(*ReadValue(2), "keeper");
}

TEST_F(RecoveryTest, UncommittedTransactionIsInvisibleAfterCrash) {
  Open(false);
  ASSERT_TRUE(InsertRow(1, "committed").ok());
  // Leave a transaction in flight at "crash" time: never committed or
  // aborted, only destroyed at test end (LeakSanitizer-clean). IMRS changes
  // are buffered until commit, so nothing of it reaches the log.
  auto loser = db_->Begin();
  ASSERT_TRUE(db_->Insert(loser.get(), table_, Record(99, 1, "loser")).ok());
  Open(true);
  EXPECT_EQ(*ReadValue(1), "committed");
  EXPECT_TRUE(ReadValue(99).status().IsNotFound());
}

TEST_F(RecoveryTest, LoserPageStoreChangesAreUndone) {
  Open(false);
  db_->ilm()->SetForcePageStore(true);
  ASSERT_TRUE(InsertRow(1, "stable").ok());

  // A page-store update whose transaction never commits, but whose dirty
  // page reaches disk (simulated by flushing the buffer cache
  // mid-transaction — the "steal" case recovery must undo).
  auto loser = db_->Begin();  // in flight at "crash"; never finished
  ASSERT_TRUE(db_->Update(loser.get(), table_, Key(1),
                          [&](std::string* payload) {
                            RecordEditor e(&table_->schema(), Slice(*payload));
                            e.SetString(2, "dirty-uncommitted");
                            *payload = e.Encode();
                          })
                  .ok());
  ASSERT_TRUE(db_->buffer_cache()->FlushAll().ok());

  Open(true);
  EXPECT_EQ(*ReadValue(1), "stable");  // undo pass restored the before-image
}

TEST_F(RecoveryTest, PackedRowsRecoverToPageStore) {
  DatabaseOptions small = DefaultOptions();
  small.imrs_cache_bytes = 64 * 1024;
  small.ilm.pack_cycle_pct = 0.25;
  Open(false, small);

  int64_t id = 0;
  while (db_->imrs_allocator()->Utilization() < 0.85) {
    ASSERT_TRUE(InsertRow(id, "packable-" + std::to_string(id)).ok());
    ++id;
  }
  db_->RunGcOnce();
  for (int i = 0; i < 8; ++i) db_->RunIlmTickOnce();
  ASSERT_GT(db_->GetStats().pack.rows_packed, 0);
  const int64_t imrs_rows_before_crash = db_->rid_map()->Size();

  Open(true, small);
  // Same residency split as before the crash, and all rows readable.
  EXPECT_EQ(db_->rid_map()->Size(), imrs_rows_before_crash);
  for (int64_t i = 0; i < id; i += 3) {
    Result<std::string> v = ReadValue(i);
    ASSERT_TRUE(v.ok()) << "row " << i;
    EXPECT_EQ(*v, "packable-" + std::to_string(i));
  }
}

TEST_F(RecoveryTest, RidAllocationCursorsRestored) {
  Open(false);
  for (int64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(InsertRow(i, "x").ok());
  }
  const uint64_t cursor = table_->partition(0).heap->RowCursor();
  Open(true);
  EXPECT_EQ(table_->partition(0).heap->RowCursor(), cursor);
  // New inserts get fresh RIDs (no collision with recovered rows).
  for (int64_t i = 100; i < 120; ++i) {
    ASSERT_TRUE(InsertRow(i, "new").ok());
  }
  for (int64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(ReadValue(i).ok()) << i;
  }
}

TEST_F(RecoveryTest, SecondaryIndexesRebuilt) {
  Open(false);
  for (int64_t i = 0; i < 30; ++i) {
    ASSERT_TRUE(InsertRow(i, "g").ok());  // all in group 1
  }
  Open(true);
  auto txn = db_->Begin();
  std::string lower, upper;
  KeyEncoder::AppendInt(&lower, 1);
  KeyEncoder::AppendInt(&upper, 2);
  std::vector<ScanRow> rows;
  ASSERT_TRUE(db_->ScanIndex(txn.get(), table_, 0, Slice(lower), Slice(upper),
                             0, &rows)
                  .ok());
  EXPECT_EQ(rows.size(), 30u);
  ASSERT_TRUE(db_->Commit(txn.get()).ok());
}

TEST_F(RecoveryTest, CommitClockRestoredPastAllCommits) {
  Open(false);
  for (int64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(InsertRow(i, "x").ok());
  }
  const uint64_t now = db_->Now();
  Open(true);
  EXPECT_GE(db_->Now(), now);
  // New transactions see all recovered data (their snapshot postdates it).
  EXPECT_TRUE(ReadValue(9).ok());
}

TEST_F(RecoveryTest, RepeatedCrashRecoverCyclesAreStable) {
  Open(false);
  ASSERT_TRUE(InsertRow(1, "gen0").ok());
  for (int gen = 1; gen <= 3; ++gen) {
    Open(true);
    EXPECT_TRUE(ReadValue(1).ok());
    ASSERT_TRUE(UpdateValue(1, "gen" + std::to_string(gen)).ok());
    ASSERT_TRUE(InsertRow(100 + gen, "extra").ok());
  }
  Open(true);
  EXPECT_EQ(*ReadValue(1), "gen3");
  for (int gen = 1; gen <= 3; ++gen) {
    EXPECT_TRUE(ReadValue(100 + gen).ok()) << gen;
  }
}

TEST_F(RecoveryTest, GarbageAtSyslogsTailIsTolerated) {
  Open(false);
  db_->ilm()->SetForcePageStore(true);
  for (int64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(InsertRow(i, "survives").ok());
  }
  db_.reset();  // close fds before poking the file

  // Simulate a torn final write: random bytes at the log tail.
  {
    FILE* f = fopen((dir_ + "/syslogs.wal").c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const char garbage[] = "\x13\x37garbage-torn-tail\xff\xfe";
    fwrite(garbage, 1, sizeof(garbage), f);
    fclose(f);
  }

  Open(true);
  for (int64_t i = 0; i < 20; ++i) {
    EXPECT_EQ(*ReadValue(i), "survives") << i;
  }
}

TEST_F(RecoveryTest, GarbageAtImrsLogTailIsTolerated) {
  Open(false);
  for (int64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(InsertRow(i, "imrs-survives").ok());
  }
  db_.reset();
  {
    FILE* f = fopen((dir_ + "/sysimrslogs.wal").c_str(), "ab");
    ASSERT_NE(f, nullptr);
    // A plausible-looking but truncated frame header.
    const char torn[] = "\xff\xff\x00\x00\x12";
    fwrite(torn, 1, sizeof(torn), f);
    fclose(f);
  }
  Open(true);
  for (int64_t i = 0; i < 20; ++i) {
    EXPECT_EQ(*ReadValue(i), "imrs-survives") << i;
  }
}

TEST_F(RecoveryTest, BitFlipInLogBodyDropsOnlyTheTail) {
  Open(false);
  for (int64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(InsertRow(i, "prefix").ok());
  }
  db_.reset();
  // Flip one byte near the end of the IMRS log: the checksum must reject
  // that record and recovery keeps the clean prefix.
  const std::string path = dir_ + "/sysimrslogs.wal";
  {
    FILE* f = fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    fseek(f, -16, SEEK_END);
    int c = fgetc(f);
    fseek(f, -16, SEEK_END);
    fputc(c ^ 0x55, f);
    fclose(f);
  }
  Open(true);
  // At least the earlier transactions' rows survive; nothing crashes, and
  // whatever is readable is uncorrupted.
  int intact = 0;
  for (int64_t i = 0; i < 10; ++i) {
    Result<std::string> v = ReadValue(i);
    if (v.ok()) {
      EXPECT_EQ(*v, "prefix");
      ++intact;
    }
  }
  EXPECT_GE(intact, 8);  // only the corrupted tail group may be lost
}

TEST_F(RecoveryTest, CompactedImrsLogRecoversSameState) {
  Open(false);
  // Build history: inserts + repeated updates + a delete, so the raw log is
  // much larger than the live state.
  for (int64_t i = 0; i < 30; ++i) {
    ASSERT_TRUE(InsertRow(i, "v0").ok());
  }
  for (int round = 1; round <= 5; ++round) {
    for (int64_t i = 0; i < 30; ++i) {
      ASSERT_TRUE(UpdateValue(i, "v" + std::to_string(round)).ok());
    }
  }
  {
    auto txn = db_->Begin();
    ASSERT_TRUE(db_->Delete(txn.get(), table_, Key(29)).ok());
    ASSERT_TRUE(db_->Commit(txn.get()).ok());
  }

  const int64_t before = db_->sysimrslogs()->SizeBytes();
  Result<int64_t> records = db_->CompactImrsLog();
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  EXPECT_GT(*records, 0);
  EXPECT_LT(db_->sysimrslogs()->SizeBytes(), before / 3);

  Open(true);
  for (int64_t i = 0; i < 29; ++i) {
    Result<std::string> v = ReadValue(i);
    ASSERT_TRUE(v.ok()) << i;
    EXPECT_EQ(*v, "v5");
  }
  // The tombstone kept masking its deleted row.
  EXPECT_TRUE(ReadValue(29).status().IsNotFound());
}

TEST_F(RecoveryTest, CompactionRequiresQuiescence) {
  Open(false);
  ASSERT_TRUE(InsertRow(1, "x").ok());
  auto active = db_->Begin();
  EXPECT_TRUE(db_->CompactImrsLog().status().IsBusy());
  ASSERT_TRUE(db_->Abort(active.get()).ok());
  EXPECT_TRUE(db_->CompactImrsLog().ok());
}

TEST_F(RecoveryTest, WritesAfterCompactionAlsoRecover) {
  Open(false);
  for (int64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(InsertRow(i, "old").ok());
  }
  ASSERT_TRUE(db_->CompactImrsLog().ok());
  for (int64_t i = 10; i < 20; ++i) {
    ASSERT_TRUE(InsertRow(i, "new").ok());
  }
  ASSERT_TRUE(UpdateValue(0, "updated-after-compaction").ok());

  Open(true);
  EXPECT_EQ(*ReadValue(0), "updated-after-compaction");
  for (int64_t i = 1; i < 10; ++i) EXPECT_EQ(*ReadValue(i), "old");
  for (int64_t i = 10; i < 20; ++i) EXPECT_EQ(*ReadValue(i), "new");
}

// --- overlapped checkpoints & parallel replay --------------------------------

TEST_F(RecoveryTest, RecoveryRebasesOntoOverlappedCheckpoint) {
  Open(false);
  for (int64_t i = 0; i < 40; ++i) {
    ASSERT_TRUE(InsertRow(i, "pre-ckpt").ok());
  }
  ASSERT_TRUE(db_->Checkpoint().ok());
  // Post-checkpoint traffic: updates of snapshotted rows, fresh inserts,
  // and a delete — all must replay on top of the snapshot.
  for (int64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(UpdateValue(i, "post-ckpt").ok());
  }
  for (int64_t i = 40; i < 50; ++i) {
    ASSERT_TRUE(InsertRow(i, "post-insert").ok());
  }
  {
    auto txn = db_->Begin();
    ASSERT_TRUE(db_->Delete(txn.get(), table_, Key(39)).ok());
    ASSERT_TRUE(db_->Commit(txn.get()).ok());
  }

  Open(true);
  for (int64_t i = 0; i < 10; ++i) EXPECT_EQ(*ReadValue(i), "post-ckpt") << i;
  for (int64_t i = 10; i < 39; ++i) EXPECT_EQ(*ReadValue(i), "pre-ckpt") << i;
  EXPECT_TRUE(ReadValue(39).status().IsNotFound());
  for (int64_t i = 40; i < 50; ++i) {
    EXPECT_EQ(*ReadValue(i), "post-insert") << i;
  }
  EXPECT_TRUE(db_->ValidateInvariants().ok());
}

TEST_F(RecoveryTest, NewestCompleteCheckpointWins) {
  Open(false);
  for (int64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(InsertRow(i, "gen1").ok());
  }
  ASSERT_TRUE(db_->Checkpoint().ok());
  for (int64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(UpdateValue(i, "gen2").ok());
  }
  ASSERT_TRUE(db_->Checkpoint().ok());
  for (int64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(UpdateValue(i, "gen3").ok());
  }

  Open(true);
  for (int64_t i = 0; i < 5; ++i) EXPECT_EQ(*ReadValue(i), "gen3") << i;
  for (int64_t i = 5; i < 20; ++i) EXPECT_EQ(*ReadValue(i), "gen2") << i;
  EXPECT_TRUE(db_->ValidateInvariants().ok());
}

// A logical fingerprint of the recovered database: full index-ordered scan
// plus residency and cursor state. Physical B+Tree page layout may differ
// between worker counts (concurrent rebuild inserts split pages in schedule
// order); the logical state may not.
struct RecoveredState {
  std::vector<std::pair<int64_t, std::string>> rows;  // (pk, value), sorted
  int64_t rid_map_size = 0;
  uint64_t row_cursor = 0;
  uint64_t clock_now = 0;

  bool operator==(const RecoveredState& other) const {
    return rows == other.rows && rid_map_size == other.rid_map_size &&
           row_cursor == other.row_cursor && clock_now == other.clock_now;
  }
};

class ParallelReplayTest : public RecoveryTest {
 protected:
  /// Builds a state that exercises every replay path: IMRS inserts/updates/
  /// deletes, page-store rows, packed rows, an overlapped checkpoint
  /// mid-history, and post-checkpoint traffic.
  void BuildWorkload() {
    DatabaseOptions small = DefaultOptions();
    small.imrs_cache_bytes = 128 * 1024;
    small.ilm.pack_cycle_pct = 0.25;
    Open(false, small);

    db_->ilm()->SetForcePageStore(true);
    for (int64_t i = 0; i < 40; ++i) {
      ASSERT_TRUE(InsertRow(i, "ps-" + std::to_string(i)).ok());
    }
    db_->ilm()->SetForcePageStore(false);
    for (int64_t i = 40; i < 160; ++i) {
      ASSERT_TRUE(InsertRow(i, "imrs-" + std::to_string(i)).ok());
    }
    for (int64_t i = 40; i < 80; ++i) {
      ASSERT_TRUE(UpdateValue(i, "upd-" + std::to_string(i)).ok());
    }
    db_->RunGcOnce();
    for (int j = 0; j < 4; ++j) db_->RunIlmTickOnce();

    ASSERT_TRUE(db_->Checkpoint().ok());

    for (int64_t i = 160; i < 200; ++i) {
      ASSERT_TRUE(InsertRow(i, "post-" + std::to_string(i)).ok());
    }
    for (int64_t i = 0; i < 10; ++i) {
      ASSERT_TRUE(UpdateValue(i, "migrated-" + std::to_string(i)).ok());
    }
    {
      auto txn = db_->Begin();
      ASSERT_TRUE(db_->Delete(txn.get(), table_, Key(150)).ok());
      ASSERT_TRUE(db_->Commit(txn.get()).ok());
    }
    db_.reset();  // crash
  }

  RecoveredState RecoverWith(int workers) {
    DatabaseOptions small = DefaultOptions();
    small.imrs_cache_bytes = 128 * 1024;
    small.ilm.pack_cycle_pct = 0.25;
    small.recovery_workers = workers;
    Open(true, small);

    RecoveredState state;
    auto txn = db_->Begin();
    std::vector<ScanRow> rows;
    Status s = db_->ScanIndex(txn.get(), table_, -1, Slice(), Slice(),
                              /*limit=*/1 << 20, &rows);
    Status c = db_->Commit(txn.get());
    (void)c;
    EXPECT_TRUE(s.ok()) << s.ToString();
    for (const ScanRow& row : rows) {
      RecordView v(&table_->schema(), Slice(row.payload));
      state.rows.emplace_back(v.GetInt64(0), v.GetString(2).ToString());
    }
    state.rid_map_size = db_->rid_map()->Size();
    state.row_cursor = table_->partition(0).heap->RowCursor();
    state.clock_now = db_->Now();
    EXPECT_TRUE(db_->ValidateInvariants().ok());
    db_.reset();  // crash again; next RecoverWith replays the same logs
    return state;
  }
};

// Replay sharded over 2 and 8 workers must land byte-identical logical
// state to the 1-worker inline anchor (the deterministic baseline the
// sharding argument is validated against, mirroring pack_parallel_test).
TEST_F(ParallelReplayTest, WorkerCountDoesNotChangeRecoveredState) {
  BuildWorkload();
  const RecoveredState serial = RecoverWith(1);
  EXPECT_GT(serial.rows.size(), 100u);
  EXPECT_GT(serial.rid_map_size, 0);
  for (int workers : {2, 8}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    const RecoveredState parallel = RecoverWith(workers);
    EXPECT_TRUE(parallel == serial)
        << "parallel replay diverged: rows " << parallel.rows.size() << " vs "
        << serial.rows.size() << ", rid_map " << parallel.rid_map_size
        << " vs " << serial.rid_map_size << ", cursor "
        << parallel.row_cursor << " vs " << serial.row_cursor;
  }
}

// recovery_workers = 0 inherits pack_workers (one knob sizes the shared
// pool); the outcome must still match the inline anchor.
TEST_F(ParallelReplayTest, DefaultWorkersInheritPackWorkers) {
  BuildWorkload();
  const RecoveredState serial = RecoverWith(1);
  DatabaseOptions small = DefaultOptions();
  small.imrs_cache_bytes = 128 * 1024;
  small.ilm.pack_cycle_pct = 0.25;
  small.pack_workers = 4;
  small.recovery_workers = 0;
  Open(true, small);
  RecoveredState state;
  {
    auto txn = db_->Begin();
    std::vector<ScanRow> rows;
    ASSERT_TRUE(db_->ScanIndex(txn.get(), table_, -1, Slice(), Slice(),
                               /*limit=*/1 << 20, &rows)
                    .ok());
    ASSERT_TRUE(db_->Commit(txn.get()).ok());
    for (const ScanRow& row : rows) {
      RecordView v(&table_->schema(), Slice(row.payload));
      state.rows.emplace_back(v.GetInt64(0), v.GetString(2).ToString());
    }
  }
  EXPECT_EQ(state.rows, serial.rows);
  EXPECT_EQ(db_->rid_map()->Size(), serial.rid_map_size);
}

// --- group commit ------------------------------------------------------------

class GroupCommitRecoveryTest : public RecoveryTest {
 protected:
  static constexpr int kCommitters = 8;

  DatabaseOptions GroupCommitOptions() {
    DatabaseOptions options = DefaultOptions();
    options.durability.policy = DurabilityPolicy::kGroupCommit;
    options.durability.max_batch_groups = kCommitters;
    // Generous linger + a start barrier below => all committers land in one
    // batch, making batch contents (and where a tear cuts) deterministic.
    options.durability.max_group_latency_us = 2'000'000;
    return options;
  }

  /// For the verification reopen: same policy, but lone committers (e.g.
  /// select-caching system transactions) only linger briefly.
  DatabaseOptions ReopenOptions() {
    DatabaseOptions options = GroupCommitOptions();
    options.durability.max_group_latency_us = 200;
    return options;
  }

  /// Runs kCommitters threads, each inserting and committing one row
  /// (ids base..base+kCommitters-1), released simultaneously so their
  /// commit groups form a single batch.
  void CommitOneBatch(int64_t base, const std::string& value) {
    std::atomic<bool> go{false};
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    threads.reserve(kCommitters);
    for (int t = 0; t < kCommitters; ++t) {
      threads.emplace_back([&, t] {
        while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
        if (!InsertRow(base + t, value).ok()) failures.fetch_add(1);
      });
    }
    go.store(true, std::memory_order_release);
    for (auto& th : threads) th.join();
    ASSERT_EQ(failures.load(), 0);
  }

  /// Truncates `file` to `keep_bytes`, simulating a crash mid-write.
  void TearFileAt(const std::string& file, int64_t keep_bytes) {
    std::filesystem::resize_file(dir_ + "/" + file,
                                 static_cast<uintmax_t>(keep_bytes));
  }
};

TEST_F(GroupCommitRecoveryTest, BatchedCommitsAreDurableAcrossCrash) {
  Open(false, GroupCommitOptions());
  CommitOneBatch(0, "batched");
  DatabaseStats stats = db_->GetStats();
  // The point of group commit: one device sync covered all 8 commits.
  EXPECT_EQ(stats.sysimrslogs.syncs, 1);
  EXPECT_EQ(stats.sysimrslogs_commit.batches, 1);
  EXPECT_EQ(stats.sysimrslogs_commit.max_batch_groups, kCommitters);

  Open(true, ReopenOptions());
  for (int64_t i = 0; i < kCommitters; ++i) {
    Result<std::string> v = ReadValue(i);
    ASSERT_TRUE(v.ok()) << "row " << i;
    EXPECT_EQ(*v, "batched");
  }
}

TEST_F(GroupCommitRecoveryTest, TornImrsBatchKeepsOnlyFullyLoggedTxns) {
  Open(false, GroupCommitOptions());
  const int64_t before = db_->sysimrslogs()->SizeBytes();
  CommitOneBatch(0, "torn-batch");
  const int64_t after = db_->sysimrslogs()->SizeBytes();
  db_.reset();  // crash

  // Tear the log mid-batch: roughly half the multi-transaction batch
  // survives. Replay must keep exactly the transactions whose groups
  // (including the kImrsCommit marker) are intact, and drop the rest —
  // no torn or phantom rows.
  TearFileAt("sysimrslogs.wal", before + (after - before) / 2);

  Open(true, ReopenOptions());
  int recovered = 0;
  for (int64_t i = 0; i < kCommitters; ++i) {
    Result<std::string> v = ReadValue(i);
    if (v.ok()) {
      EXPECT_EQ(*v, "torn-batch") << "row " << i;
      ++recovered;
    } else {
      EXPECT_TRUE(v.status().IsNotFound()) << "row " << i;
    }
  }
  EXPECT_GE(recovered, 1);           // a prefix of the batch was intact
  EXPECT_LT(recovered, kCommitters);  // the tear cost the tail its txns
  EXPECT_EQ(db_->rid_map()->Size(), recovered);
}

TEST_F(GroupCommitRecoveryTest, TornSyslogsCommitBatchUndoesLosers) {
  Open(false, GroupCommitOptions());
  db_->ilm()->SetForcePageStore(true);
  const int64_t before = db_->syslogs()->SizeBytes();
  CommitOneBatch(0, "ps-torn");
  const int64_t after = db_->syslogs()->SizeBytes();
  // Make the loser data pages reach disk so recovery must actively undo
  // them (the "steal" case), not merely fail to redo.
  ASSERT_TRUE(db_->buffer_cache()->FlushAll().ok());
  db_.reset();  // crash

  // Between `before` and `after`, syslogs received the per-DML data records
  // followed by one batched append of kPsCommit records at the tail. Cutting
  // near the end of that region lands inside (or before) the commit batch,
  // so at least one transaction loses its commit record.
  TearFileAt("syslogs.wal", after - (after - before) / 8);

  Open(true, ReopenOptions());
  int winners = 0;
  for (int64_t i = 0; i < kCommitters; ++i) {
    Result<std::string> v = ReadValue(i);
    if (v.ok()) {
      EXPECT_EQ(*v, "ps-torn") << "row " << i;
      ++winners;
    } else {
      EXPECT_TRUE(v.status().IsNotFound()) << "row " << i;
    }
  }
  // Some commit records survived the tear, some did not; survivors redo,
  // the rest are losers whose flushed pages were undone.
  EXPECT_LT(winners, kCommitters);
}

TEST_F(RecoveryTest, MixedStoreWorkloadRecoversConsistently) {
  Open(false);
  db_->ilm()->SetForcePageStore(true);
  for (int64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(InsertRow(i, "cold").ok());
  }
  db_->ilm()->SetForcePageStore(false);
  for (int64_t i = 20; i < 40; ++i) {
    ASSERT_TRUE(InsertRow(i, "hot").ok());
  }
  // Migrate a few cold rows by updating them.
  for (int64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(UpdateValue(i, "migrated").ok());
  }
  Open(true);
  for (int64_t i = 0; i < 5; ++i) EXPECT_EQ(*ReadValue(i), "migrated");
  for (int64_t i = 5; i < 20; ++i) EXPECT_EQ(*ReadValue(i), "cold");
  for (int64_t i = 20; i < 40; ++i) EXPECT_EQ(*ReadValue(i), "hot");
  auto txn = db_->Begin();
  std::vector<ScanRow> rows;
  ASSERT_TRUE(
      db_->ScanIndex(txn.get(), table_, -1, Slice(), Slice(), 0, &rows).ok());
  EXPECT_EQ(rows.size(), 40u);
  ASSERT_TRUE(db_->Commit(txn.get()).ok());
}

}  // namespace
}  // namespace btrim
