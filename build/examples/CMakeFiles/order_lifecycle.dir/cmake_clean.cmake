file(REMOVE_RECURSE
  "CMakeFiles/order_lifecycle.dir/order_lifecycle.cpp.o"
  "CMakeFiles/order_lifecycle.dir/order_lifecycle.cpp.o.d"
  "order_lifecycle"
  "order_lifecycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/order_lifecycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
