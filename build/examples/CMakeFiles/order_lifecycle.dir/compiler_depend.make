# Empty compiler generated dependencies file for order_lifecycle.
# This may be replaced when dependencies are built.
