file(REMOVE_RECURSE
  "CMakeFiles/tpcc_cli.dir/tpcc_cli.cpp.o"
  "CMakeFiles/tpcc_cli.dir/tpcc_cli.cpp.o.d"
  "tpcc_cli"
  "tpcc_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpcc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
