# Empty dependencies file for tpcc_cli.
# This may be replaced when dependencies are built.
