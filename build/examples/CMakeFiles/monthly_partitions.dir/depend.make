# Empty dependencies file for monthly_partitions.
# This may be replaced when dependencies are built.
