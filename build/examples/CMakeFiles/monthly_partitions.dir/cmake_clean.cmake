file(REMOVE_RECURSE
  "CMakeFiles/monthly_partitions.dir/monthly_partitions.cpp.o"
  "CMakeFiles/monthly_partitions.dir/monthly_partitions.cpp.o.d"
  "monthly_partitions"
  "monthly_partitions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monthly_partitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
