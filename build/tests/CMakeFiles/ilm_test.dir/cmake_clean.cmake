file(REMOVE_RECURSE
  "CMakeFiles/ilm_test.dir/ilm_test.cc.o"
  "CMakeFiles/ilm_test.dir/ilm_test.cc.o.d"
  "ilm_test"
  "ilm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
