# Empty dependencies file for ilm_test.
# This may be replaced when dependencies are built.
