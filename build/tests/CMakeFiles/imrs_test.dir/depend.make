# Empty dependencies file for imrs_test.
# This may be replaced when dependencies are built.
