file(REMOVE_RECURSE
  "CMakeFiles/imrs_test.dir/imrs_test.cc.o"
  "CMakeFiles/imrs_test.dir/imrs_test.cc.o.d"
  "imrs_test"
  "imrs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imrs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
