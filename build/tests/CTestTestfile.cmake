# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(common_test "/root/repo/build/tests/common_test")
set_tests_properties(common_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;10;btrim_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(alloc_test "/root/repo/build/tests/alloc_test")
set_tests_properties(alloc_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;11;btrim_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(page_test "/root/repo/build/tests/page_test")
set_tests_properties(page_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;12;btrim_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(index_test "/root/repo/build/tests/index_test")
set_tests_properties(index_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;13;btrim_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(txn_test "/root/repo/build/tests/txn_test")
set_tests_properties(txn_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;14;btrim_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(wal_test "/root/repo/build/tests/wal_test")
set_tests_properties(wal_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;15;btrim_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(imrs_test "/root/repo/build/tests/imrs_test")
set_tests_properties(imrs_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;16;btrim_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(ilm_test "/root/repo/build/tests/ilm_test")
set_tests_properties(ilm_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;17;btrim_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(engine_test "/root/repo/build/tests/engine_test")
set_tests_properties(engine_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;18;btrim_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(recovery_test "/root/repo/build/tests/recovery_test")
set_tests_properties(recovery_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;19;btrim_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tpcc_test "/root/repo/build/tests/tpcc_test")
set_tests_properties(tpcc_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;20;btrim_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_test "/root/repo/build/tests/integration_test")
set_tests_properties(integration_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;21;btrim_test;/root/repo/tests/CMakeLists.txt;0;")
