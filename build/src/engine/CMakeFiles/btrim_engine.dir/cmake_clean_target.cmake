file(REMOVE_RECURSE
  "libbtrim_engine.a"
)
