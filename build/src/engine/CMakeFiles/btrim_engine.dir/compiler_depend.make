# Empty compiler generated dependencies file for btrim_engine.
# This may be replaced when dependencies are built.
