file(REMOVE_RECURSE
  "CMakeFiles/btrim_engine.dir/access.cc.o"
  "CMakeFiles/btrim_engine.dir/access.cc.o.d"
  "CMakeFiles/btrim_engine.dir/database.cc.o"
  "CMakeFiles/btrim_engine.dir/database.cc.o.d"
  "CMakeFiles/btrim_engine.dir/recovery.cc.o"
  "CMakeFiles/btrim_engine.dir/recovery.cc.o.d"
  "CMakeFiles/btrim_engine.dir/schema.cc.o"
  "CMakeFiles/btrim_engine.dir/schema.cc.o.d"
  "CMakeFiles/btrim_engine.dir/stats_printer.cc.o"
  "CMakeFiles/btrim_engine.dir/stats_printer.cc.o.d"
  "libbtrim_engine.a"
  "libbtrim_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btrim_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
