# Empty compiler generated dependencies file for btrim_ilm.
# This may be replaced when dependencies are built.
