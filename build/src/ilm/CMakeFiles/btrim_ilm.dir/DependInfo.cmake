
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ilm/ilm_manager.cc" "src/ilm/CMakeFiles/btrim_ilm.dir/ilm_manager.cc.o" "gcc" "src/ilm/CMakeFiles/btrim_ilm.dir/ilm_manager.cc.o.d"
  "/root/repo/src/ilm/pack.cc" "src/ilm/CMakeFiles/btrim_ilm.dir/pack.cc.o" "gcc" "src/ilm/CMakeFiles/btrim_ilm.dir/pack.cc.o.d"
  "/root/repo/src/ilm/tsf.cc" "src/ilm/CMakeFiles/btrim_ilm.dir/tsf.cc.o" "gcc" "src/ilm/CMakeFiles/btrim_ilm.dir/tsf.cc.o.d"
  "/root/repo/src/ilm/tuner.cc" "src/ilm/CMakeFiles/btrim_ilm.dir/tuner.cc.o" "gcc" "src/ilm/CMakeFiles/btrim_ilm.dir/tuner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/btrim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/btrim_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/imrs/CMakeFiles/btrim_imrs.dir/DependInfo.cmake"
  "/root/repo/build/src/page/CMakeFiles/btrim_page.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
