file(REMOVE_RECURSE
  "CMakeFiles/btrim_ilm.dir/ilm_manager.cc.o"
  "CMakeFiles/btrim_ilm.dir/ilm_manager.cc.o.d"
  "CMakeFiles/btrim_ilm.dir/pack.cc.o"
  "CMakeFiles/btrim_ilm.dir/pack.cc.o.d"
  "CMakeFiles/btrim_ilm.dir/tsf.cc.o"
  "CMakeFiles/btrim_ilm.dir/tsf.cc.o.d"
  "CMakeFiles/btrim_ilm.dir/tuner.cc.o"
  "CMakeFiles/btrim_ilm.dir/tuner.cc.o.d"
  "libbtrim_ilm.a"
  "libbtrim_ilm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btrim_ilm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
