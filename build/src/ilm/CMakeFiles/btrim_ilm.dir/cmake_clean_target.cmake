file(REMOVE_RECURSE
  "libbtrim_ilm.a"
)
