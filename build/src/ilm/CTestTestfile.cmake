# CMake generated Testfile for 
# Source directory: /root/repo/src/ilm
# Build directory: /root/repo/build/src/ilm
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
