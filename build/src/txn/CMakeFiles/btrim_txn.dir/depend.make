# Empty dependencies file for btrim_txn.
# This may be replaced when dependencies are built.
