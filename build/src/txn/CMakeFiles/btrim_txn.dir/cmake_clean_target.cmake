file(REMOVE_RECURSE
  "libbtrim_txn.a"
)
