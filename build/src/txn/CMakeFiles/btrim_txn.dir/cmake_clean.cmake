file(REMOVE_RECURSE
  "CMakeFiles/btrim_txn.dir/lock_manager.cc.o"
  "CMakeFiles/btrim_txn.dir/lock_manager.cc.o.d"
  "CMakeFiles/btrim_txn.dir/transaction.cc.o"
  "CMakeFiles/btrim_txn.dir/transaction.cc.o.d"
  "libbtrim_txn.a"
  "libbtrim_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btrim_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
