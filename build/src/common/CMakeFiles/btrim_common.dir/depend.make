# Empty dependencies file for btrim_common.
# This may be replaced when dependencies are built.
