file(REMOVE_RECURSE
  "libbtrim_common.a"
)
