file(REMOVE_RECURSE
  "CMakeFiles/btrim_common.dir/status.cc.o"
  "CMakeFiles/btrim_common.dir/status.cc.o.d"
  "libbtrim_common.a"
  "libbtrim_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btrim_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
