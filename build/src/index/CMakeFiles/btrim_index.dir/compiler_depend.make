# Empty compiler generated dependencies file for btrim_index.
# This may be replaced when dependencies are built.
