file(REMOVE_RECURSE
  "CMakeFiles/btrim_index.dir/btree.cc.o"
  "CMakeFiles/btrim_index.dir/btree.cc.o.d"
  "libbtrim_index.a"
  "libbtrim_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btrim_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
