file(REMOVE_RECURSE
  "libbtrim_index.a"
)
