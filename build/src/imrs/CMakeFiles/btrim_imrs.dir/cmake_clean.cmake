file(REMOVE_RECURSE
  "CMakeFiles/btrim_imrs.dir/gc.cc.o"
  "CMakeFiles/btrim_imrs.dir/gc.cc.o.d"
  "CMakeFiles/btrim_imrs.dir/store.cc.o"
  "CMakeFiles/btrim_imrs.dir/store.cc.o.d"
  "libbtrim_imrs.a"
  "libbtrim_imrs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btrim_imrs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
