file(REMOVE_RECURSE
  "libbtrim_imrs.a"
)
