# Empty compiler generated dependencies file for btrim_imrs.
# This may be replaced when dependencies are built.
