file(REMOVE_RECURSE
  "CMakeFiles/btrim_alloc.dir/fragment_allocator.cc.o"
  "CMakeFiles/btrim_alloc.dir/fragment_allocator.cc.o.d"
  "libbtrim_alloc.a"
  "libbtrim_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btrim_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
