# Empty dependencies file for btrim_alloc.
# This may be replaced when dependencies are built.
