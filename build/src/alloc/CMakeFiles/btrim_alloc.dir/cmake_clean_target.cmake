file(REMOVE_RECURSE
  "libbtrim_alloc.a"
)
