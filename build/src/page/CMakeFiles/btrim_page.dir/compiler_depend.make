# Empty compiler generated dependencies file for btrim_page.
# This may be replaced when dependencies are built.
