file(REMOVE_RECURSE
  "CMakeFiles/btrim_page.dir/buffer_cache.cc.o"
  "CMakeFiles/btrim_page.dir/buffer_cache.cc.o.d"
  "CMakeFiles/btrim_page.dir/device.cc.o"
  "CMakeFiles/btrim_page.dir/device.cc.o.d"
  "CMakeFiles/btrim_page.dir/heap_file.cc.o"
  "CMakeFiles/btrim_page.dir/heap_file.cc.o.d"
  "CMakeFiles/btrim_page.dir/slotted_page.cc.o"
  "CMakeFiles/btrim_page.dir/slotted_page.cc.o.d"
  "libbtrim_page.a"
  "libbtrim_page.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btrim_page.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
