file(REMOVE_RECURSE
  "libbtrim_page.a"
)
