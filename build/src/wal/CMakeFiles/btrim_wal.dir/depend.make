# Empty dependencies file for btrim_wal.
# This may be replaced when dependencies are built.
