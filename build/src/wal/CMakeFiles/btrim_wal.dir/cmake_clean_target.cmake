file(REMOVE_RECURSE
  "libbtrim_wal.a"
)
