file(REMOVE_RECURSE
  "CMakeFiles/btrim_wal.dir/log.cc.o"
  "CMakeFiles/btrim_wal.dir/log.cc.o.d"
  "CMakeFiles/btrim_wal.dir/log_record.cc.o"
  "CMakeFiles/btrim_wal.dir/log_record.cc.o.d"
  "libbtrim_wal.a"
  "libbtrim_wal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btrim_wal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
