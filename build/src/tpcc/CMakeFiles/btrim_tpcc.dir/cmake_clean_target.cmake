file(REMOVE_RECURSE
  "libbtrim_tpcc.a"
)
