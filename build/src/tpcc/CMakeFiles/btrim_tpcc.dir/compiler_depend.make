# Empty compiler generated dependencies file for btrim_tpcc.
# This may be replaced when dependencies are built.
