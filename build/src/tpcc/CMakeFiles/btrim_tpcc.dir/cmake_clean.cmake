file(REMOVE_RECURSE
  "CMakeFiles/btrim_tpcc.dir/driver.cc.o"
  "CMakeFiles/btrim_tpcc.dir/driver.cc.o.d"
  "CMakeFiles/btrim_tpcc.dir/loader.cc.o"
  "CMakeFiles/btrim_tpcc.dir/loader.cc.o.d"
  "CMakeFiles/btrim_tpcc.dir/schema.cc.o"
  "CMakeFiles/btrim_tpcc.dir/schema.cc.o.d"
  "CMakeFiles/btrim_tpcc.dir/txns.cc.o"
  "CMakeFiles/btrim_tpcc.dir/txns.cc.o.d"
  "libbtrim_tpcc.a"
  "libbtrim_tpcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btrim_tpcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
