# Empty compiler generated dependencies file for ablation_apportion.
# This may be replaced when dependencies are built.
