file(REMOVE_RECURSE
  "CMakeFiles/ablation_apportion.dir/ablation_apportion.cc.o"
  "CMakeFiles/ablation_apportion.dir/ablation_apportion.cc.o.d"
  "ablation_apportion"
  "ablation_apportion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_apportion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
