# Empty dependencies file for fig4_footprint_ilm_on.
# This may be replaced when dependencies are built.
