file(REMOVE_RECURSE
  "CMakeFiles/fig4_footprint_ilm_on.dir/fig4_footprint_ilm_on.cc.o"
  "CMakeFiles/fig4_footprint_ilm_on.dir/fig4_footprint_ilm_on.cc.o.d"
  "fig4_footprint_ilm_on"
  "fig4_footprint_ilm_on.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_footprint_ilm_on.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
