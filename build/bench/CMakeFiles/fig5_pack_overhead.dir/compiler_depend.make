# Empty compiler generated dependencies file for fig5_pack_overhead.
# This may be replaced when dependencies are built.
