file(REMOVE_RECURSE
  "CMakeFiles/fig5_pack_overhead.dir/fig5_pack_overhead.cc.o"
  "CMakeFiles/fig5_pack_overhead.dir/fig5_pack_overhead.cc.o.d"
  "fig5_pack_overhead"
  "fig5_pack_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_pack_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
