file(REMOVE_RECURSE
  "CMakeFiles/fig3_footprint_ilm_off.dir/fig3_footprint_ilm_off.cc.o"
  "CMakeFiles/fig3_footprint_ilm_off.dir/fig3_footprint_ilm_off.cc.o.d"
  "fig3_footprint_ilm_off"
  "fig3_footprint_ilm_off.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_footprint_ilm_off.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
