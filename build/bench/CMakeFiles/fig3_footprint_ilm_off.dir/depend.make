# Empty dependencies file for fig3_footprint_ilm_off.
# This may be replaced when dependencies are built.
