file(REMOVE_RECURSE
  "CMakeFiles/fig9_steady_threshold.dir/fig9_steady_threshold.cc.o"
  "CMakeFiles/fig9_steady_threshold.dir/fig9_steady_threshold.cc.o.d"
  "fig9_steady_threshold"
  "fig9_steady_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_steady_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
