# Empty compiler generated dependencies file for fig10_threshold_params.
# This may be replaced when dependencies are built.
