file(REMOVE_RECURSE
  "CMakeFiles/fig10_threshold_params.dir/fig10_threshold_params.cc.o"
  "CMakeFiles/fig10_threshold_params.dir/fig10_threshold_params.cc.o.d"
  "fig10_threshold_params"
  "fig10_threshold_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_threshold_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
