# Empty compiler generated dependencies file for fig6_row_reuse.
# This may be replaced when dependencies are built.
