file(REMOVE_RECURSE
  "CMakeFiles/fig6_row_reuse.dir/fig6_row_reuse.cc.o"
  "CMakeFiles/fig6_row_reuse.dir/fig6_row_reuse.cc.o.d"
  "fig6_row_reuse"
  "fig6_row_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_row_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
