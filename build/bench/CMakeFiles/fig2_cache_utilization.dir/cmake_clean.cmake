file(REMOVE_RECURSE
  "CMakeFiles/fig2_cache_utilization.dir/fig2_cache_utilization.cc.o"
  "CMakeFiles/fig2_cache_utilization.dir/fig2_cache_utilization.cc.o.d"
  "fig2_cache_utilization"
  "fig2_cache_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_cache_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
