# Empty compiler generated dependencies file for fig2_cache_utilization.
# This may be replaced when dependencies are built.
