# Empty compiler generated dependencies file for fig1_ilm_benefits.
# This may be replaced when dependencies are built.
