file(REMOVE_RECURSE
  "CMakeFiles/fig1_ilm_benefits.dir/fig1_ilm_benefits.cc.o"
  "CMakeFiles/fig1_ilm_benefits.dir/fig1_ilm_benefits.cc.o.d"
  "fig1_ilm_benefits"
  "fig1_ilm_benefits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_ilm_benefits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
