file(REMOVE_RECURSE
  "CMakeFiles/ablation_select_caching.dir/ablation_select_caching.cc.o"
  "CMakeFiles/ablation_select_caching.dir/ablation_select_caching.cc.o.d"
  "ablation_select_caching"
  "ablation_select_caching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_select_caching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
