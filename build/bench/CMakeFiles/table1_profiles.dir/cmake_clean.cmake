file(REMOVE_RECURSE
  "CMakeFiles/table1_profiles.dir/table1_profiles.cc.o"
  "CMakeFiles/table1_profiles.dir/table1_profiles.cc.o.d"
  "table1_profiles"
  "table1_profiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
