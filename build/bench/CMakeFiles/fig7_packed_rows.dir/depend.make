# Empty dependencies file for fig7_packed_rows.
# This may be replaced when dependencies are built.
