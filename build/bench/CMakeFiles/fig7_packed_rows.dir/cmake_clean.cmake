file(REMOVE_RECURSE
  "CMakeFiles/fig7_packed_rows.dir/fig7_packed_rows.cc.o"
  "CMakeFiles/fig7_packed_rows.dir/fig7_packed_rows.cc.o.d"
  "fig7_packed_rows"
  "fig7_packed_rows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_packed_rows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
