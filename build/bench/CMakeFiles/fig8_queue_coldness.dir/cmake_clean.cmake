file(REMOVE_RECURSE
  "CMakeFiles/fig8_queue_coldness.dir/fig8_queue_coldness.cc.o"
  "CMakeFiles/fig8_queue_coldness.dir/fig8_queue_coldness.cc.o.d"
  "fig8_queue_coldness"
  "fig8_queue_coldness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_queue_coldness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
