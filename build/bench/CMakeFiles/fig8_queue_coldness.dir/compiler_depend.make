# Empty compiler generated dependencies file for fig8_queue_coldness.
# This may be replaced when dependencies are built.
