
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig8_queue_coldness.cc" "bench/CMakeFiles/fig8_queue_coldness.dir/fig8_queue_coldness.cc.o" "gcc" "bench/CMakeFiles/fig8_queue_coldness.dir/fig8_queue_coldness.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/tpcc/CMakeFiles/btrim_tpcc.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/btrim_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/btrim_index.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/btrim_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/wal/CMakeFiles/btrim_wal.dir/DependInfo.cmake"
  "/root/repo/build/src/ilm/CMakeFiles/btrim_ilm.dir/DependInfo.cmake"
  "/root/repo/build/src/imrs/CMakeFiles/btrim_imrs.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/btrim_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/page/CMakeFiles/btrim_page.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/btrim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
